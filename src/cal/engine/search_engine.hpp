// The unified search core behind every checker in this library.
//
// CalChecker (Def. 5/6 membership), LinChecker (Wing–Gong), the interval
// checker, and sched::Explorer's state-space walk are all the same
// algorithm: a depth-first search over policy-defined nodes with
// deduplication on a flat int64 encoding, an optional node cap, and either
// a *first goal wins* (accept) or a *collect every goal* (collect) result
// discipline. What differs per checker — node layout, successor
// generation, spec-step memoization — lives in a Policy; what is shared —
// the DFS drivers (sequential and work-stealing parallel), the visited
// set, the cap/exhaustion bookkeeping, and the witness stack — lives here.
//
// Policy concept
// --------------
//   struct Policy {
//     struct Node;                  // copyable (the parallel driver forks)
//     struct Label;                 // one witness step (copyable)
//     std::vector<Node> roots();    // search entry points, tried in order
//     bool is_goal(const Node&);
//     void encode(const Node&, NodeKey& out);     // dedup key (out.clear()!)
//     void on_enter(const Node&, std::size_t depth);   // pre-dedup hook
//     bool cancelled() const;       // policy-side early stop
//     template <typename Emit>
//     void expand(const Node&, std::size_t depth,
//                 const std::vector<Label>& prefix, Emit&& emit);
//   };
//
// expand() calls emit(Node&&, Label&&) once per successor; the driver
// *recurses inside emit* and returns false when expansion should stop
// (goal found / cancelled), so successor generation and recursion
// interleave exactly as in a hand-written DFS — which is what keeps
// witnesses byte-identical to the pre-engine checkers. `prefix` is the
// label path from this node's root (the explorer records violation
// schedules from it; checkers ignore it).
//
// Drivers
// -------
//   SequentialSearch: plain recursive DFS, VisitedSet, witness stack.
//   ParallelSearch:   the shape proven out by the original parallel CAL
//     checker — subtree tasks forked onto a work-stealing par::TaskPool at
//     depth < kForkDepth (each task carrying a copy of its label prefix),
//     SharedVisitedSet for cross-worker dedup, cooperative cancellation
//     through an atomic flag once a goal is published (accept mode) or the
//     cap trips. Collect mode serializes sink calls under a mutex and does
//     not cancel on goals.
//
// Node-entry ordering (load-bearing for drop-in compatibility):
//   accept mode:  cancelled? → goal? → cap? → dedup insert → expand
//     (goal precedes dedup so a root that is already a goal reports
//      visited_states == 0, as the original checkers did);
//   collect mode: cancelled? → on_enter → cap? → dedup insert → count →
//                 goal? (sink, no expansion) → expand
//     (matching the explorer: depth/event accounting precedes the cap,
//      terminals are counted once per *deduped* state, and goal nodes are
//      sinks — their successors, if any, are not explored).
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

#include "cal/engine/visited.hpp"
#include "cal/parallel/task_pool.hpp"

namespace cal::engine {

struct SearchOptions {
  /// Node cap: searches stop with `exhausted` once this many nodes have
  /// been deduplicated (0 = unbounded).
  std::size_t max_visited = 0;
  /// Store exact node encodings instead of 128-bit fingerprints.
  bool exact_visited = false;
  /// Deduplicate at all (the explorer's merge_states=false turns this off;
  /// the cap then counts entered nodes instead of deduped ones).
  bool dedup = true;
};

struct SearchStats {
  /// Accept mode: a goal was reached (witness() holds its label path).
  bool found = false;
  /// The node cap tripped; a negative verdict is inconclusive.
  bool exhausted = false;
  /// Nodes deduplicated (== nodes entered when dedup is off).
  std::size_t visited_states = 0;
  /// Peak footprint of the visited set.
  std::size_t visited_bytes = 0;
  /// Nodes pruned because their encoding was already visited.
  std::size_t dedup_hits = 0;
  /// Deepest node entered (labels from root).
  std::size_t max_depth = 0;
  /// Successors never generated thanks to partial-order reduction (filled
  /// from `policy.por_pruned()` when the policy provides it; else 0).
  std::size_t por_pruned = 0;
  /// Dedup hits that only exist because the encoding canonicalized away a
  /// symmetry (filled from `policy.symmetry_merged()` when provided).
  std::size_t symmetry_merged = 0;
};

/// Copies the policy's reduction counters into the stats when the policy
/// exposes them (detected per accessor; policies without reductions need
/// no boilerplate).
template <typename Policy>
void fill_policy_stats(Policy& policy, SearchStats& stats) {
  if constexpr (requires { policy.por_pruned(); }) {
    stats.por_pruned = policy.por_pruned();
  }
  if constexpr (requires { policy.symmetry_merged(); }) {
    stats.symmetry_merged = policy.symmetry_merged();
  }
}

/// Single-threaded driver. One instance runs one search.
template <typename Policy>
class SequentialSearch {
 public:
  using Node = typename Policy::Node;
  using Label = typename Policy::Label;

  SequentialSearch(Policy& policy, const SearchOptions& options)
      : policy_(policy), options_(options), visited_(options.exact_visited) {}

  /// Accept mode: stops at the first goal. witness() is its label path.
  SearchStats run() {
    for (Node& root : policy_.roots()) {
      if (dfs_accept(root, 0)) {
        stats_.found = true;
        break;
      }
    }
    return finish();
  }

  /// Collect mode: visits every node, feeding each goal (with the label
  /// path from its root) to `sink(const Node&, const std::vector<Label>&)`.
  template <typename Sink>
  SearchStats run_collect(Sink&& sink) {
    for (Node& root : policy_.roots()) {
      dfs_collect(root, 0, sink);
      prefix_.clear();
    }
    return finish();
  }

  [[nodiscard]] std::vector<Label>&& witness() { return std::move(prefix_); }

 private:
  SearchStats finish() {
    stats_.visited_states = options_.dedup ? visited_.size() : entered_;
    stats_.visited_bytes = visited_.bytes();
    fill_policy_stats(policy_, stats_);
    return stats_;
  }

  bool at_cap() {
    const std::size_t count = options_.dedup ? visited_.size() : entered_;
    if (options_.max_visited != 0 && count >= options_.max_visited) {
      stats_.exhausted = true;
      return true;
    }
    return false;
  }

  /// True iff the node is new (or dedup is off).
  bool enter(const Node& node) {
    if (!options_.dedup) return true;
    policy_.encode(node, scratch_);
    if (!visited_.insert(scratch_)) {
      ++stats_.dedup_hits;
      if constexpr (requires { policy_.on_dedup(node); }) {
        policy_.on_dedup(node);  // e.g. attribute the hit to a reduction
      }
      return false;
    }
    return true;
  }

  bool dfs_accept(const Node& node, std::size_t depth) {
    if (policy_.cancelled()) return false;
    if (depth > stats_.max_depth) stats_.max_depth = depth;
    policy_.on_enter(node, depth);
    if (policy_.is_goal(node)) return true;
    if (at_cap()) return false;
    if (!enter(node)) return false;
    bool found = false;
    policy_.expand(node, depth, prefix_,
                   [&](Node&& next, Label&& label) -> bool {
                     prefix_.push_back(std::move(label));
                     found = dfs_accept(next, depth + 1);
                     if (!found) prefix_.pop_back();
                     return !found && !policy_.cancelled();
                   });
    return found;
  }

  template <typename Sink>
  void dfs_collect(const Node& node, std::size_t depth, Sink& sink) {
    // Exhaustion is sticky in collect mode, as in the parallel driver
    // (whose cancelled() folds it in): once the cap trips, nothing further
    // is expanded — the count can never come back under the cap, and
    // policy-side work counters (e.g. the explorer's transitions) should
    // freeze where the pre-engine explorers froze them.
    if (policy_.cancelled() || stats_.exhausted) return;
    if (depth > stats_.max_depth) stats_.max_depth = depth;
    policy_.on_enter(node, depth);
    if (at_cap()) return;
    if (!enter(node)) return;
    ++entered_;
    if (policy_.is_goal(node)) {
      sink(node, prefix_);
      return;
    }
    policy_.expand(node, depth, prefix_,
                   [&](Node&& next, Label&& label) -> bool {
                     prefix_.push_back(std::move(label));
                     dfs_collect(next, depth + 1, sink);
                     prefix_.pop_back();
                     return !policy_.cancelled() && !stats_.exhausted;
                   });
  }

  Policy& policy_;
  SearchOptions options_;
  VisitedSet visited_;
  SearchStats stats_;
  std::vector<Label> prefix_;
  NodeKey scratch_;
  std::size_t entered_ = 0;  // nodes entered; the count when dedup is off
};

/// Work-stealing parallel driver. The policy is shared by all workers, so
/// its expand()/is_goal()/encode() must be thread-safe (checker policies
/// achieve this with sharded step memos and atomic counters — see the
/// kShared template parameter of the checker policies).
template <typename Policy>
class ParallelSearch {
 public:
  using Node = typename Policy::Node;
  using Label = typename Policy::Label;

  /// Subtrees shallower than this are forked as tasks; deeper ones run
  /// inline. Depth 2 saturates tens of workers on realistic branching
  /// while keeping per-task prefix copies negligible.
  static constexpr std::size_t kForkDepth = 2;

  ParallelSearch(Policy& policy, const SearchOptions& options,
                 std::size_t threads)
      : policy_(policy),
        options_(options),
        threads_(threads),
        visited_(options.exact_visited) {}

  SearchStats run() {
    drive([this](Node&& root, std::vector<Label>&& prefix) {
      dfs_accept(std::move(root), 0, prefix);
    });
    SearchStats stats = finish();
    stats.found = found_.load(std::memory_order_acquire);
    return stats;
  }

  template <typename Sink>
  SearchStats run_collect(Sink&& sink) {
    drive([this, &sink](Node&& root, std::vector<Label>&& prefix) {
      dfs_collect(std::move(root), 0, prefix, sink);
    });
    return finish();
  }

  [[nodiscard]] std::vector<Label>&& witness() { return std::move(witness_); }

 private:
  template <typename Body>
  void drive(Body&& body) {
    par::TaskPool pool(threads_);
    pool_ = &pool;
    for (Node& root : policy_.roots()) {
      pool.submit([this, &body, root = std::move(root)]() mutable {
        body(std::move(root), std::vector<Label>());
      });
    }
    pool.wait_idle();
    pool_ = nullptr;
  }

  SearchStats finish() {
    SearchStats stats;
    stats.exhausted = exhausted_.load(std::memory_order_acquire);
    stats.visited_states = options_.dedup
                               ? visited_.size()
                               : entered_.load(std::memory_order_relaxed);
    stats.visited_bytes = visited_.bytes();
    stats.dedup_hits = dedup_hits_.load(std::memory_order_relaxed);
    stats.max_depth = max_depth_.load(std::memory_order_relaxed);
    fill_policy_stats(policy_, stats);
    return stats;
  }

  bool cancelled() const {
    return found_.load(std::memory_order_acquire) ||
           exhausted_.load(std::memory_order_acquire) || policy_.cancelled();
  }

  bool at_cap() {
    const std::size_t count = options_.dedup
                                  ? visited_count_.load(std::memory_order_relaxed)
                                  : entered_.load(std::memory_order_relaxed);
    if (options_.max_visited != 0 && count >= options_.max_visited) {
      exhausted_.store(true, std::memory_order_release);
      return true;
    }
    return false;
  }

  bool enter(const Node& node) {
    if (!options_.dedup) return true;
    NodeKey key;
    policy_.encode(node, key);
    if (!visited_.insert(std::move(key))) {
      dedup_hits_.fetch_add(1, std::memory_order_relaxed);
      if constexpr (requires { policy_.on_dedup(node); }) {
        policy_.on_dedup(node);  // must be thread-safe in shared policies
      }
      return false;
    }
    visited_count_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  void note_depth(std::size_t depth) {
    std::size_t seen = max_depth_.load(std::memory_order_relaxed);
    while (depth > seen &&
           !max_depth_.compare_exchange_weak(seen, depth,
                                             std::memory_order_relaxed)) {
    }
  }

  void publish_witness(const std::vector<Label>& prefix) {
    std::lock_guard<std::mutex> lock(result_mutex_);
    if (found_.load(std::memory_order_relaxed)) return;
    witness_ = prefix;
    found_.store(true, std::memory_order_release);
  }

  /// One task: searches a subtree, forking shallow children as new tasks.
  /// `prefix` is this task's private label path from the root.
  void dfs_accept(Node&& node, std::size_t depth, std::vector<Label>& prefix) {
    if (cancelled()) return;
    note_depth(depth);
    policy_.on_enter(node, depth);
    if (policy_.is_goal(node)) {
      publish_witness(prefix);
      return;
    }
    if (at_cap()) return;
    if (!enter(node)) return;
    policy_.expand(node, depth, prefix,
                   [&](Node&& next, Label&& label) -> bool {
                     step(std::move(next), std::move(label), depth, prefix,
                          [this](Node&& n, std::size_t d,
                                 std::vector<Label>& p) {
                            dfs_accept(std::move(n), d, p);
                          });
                     return !cancelled();
                   });
  }

  template <typename Sink>
  void dfs_collect(Node&& node, std::size_t depth, std::vector<Label>& prefix,
                   Sink& sink) {
    if (cancelled()) return;
    note_depth(depth);
    policy_.on_enter(node, depth);
    if (at_cap()) return;
    if (!enter(node)) return;
    entered_.fetch_add(1, std::memory_order_relaxed);
    if (policy_.is_goal(node)) {
      std::lock_guard<std::mutex> lock(result_mutex_);
      sink(node, prefix);
      return;
    }
    policy_.expand(node, depth, prefix,
                   [&](Node&& next, Label&& label) -> bool {
                     step(std::move(next), std::move(label), depth, prefix,
                          [this, &sink](Node&& n, std::size_t d,
                                        std::vector<Label>& p) {
                            dfs_collect(std::move(n), d, p, sink);
                          });
                     return !cancelled();
                   });
  }

  /// Recurse into a successor: as a forked task (with its own prefix copy)
  /// near the root, inline below kForkDepth.
  template <typename Recurse>
  void step(Node&& next, Label&& label, std::size_t depth,
            std::vector<Label>& prefix, Recurse recurse) {
    if (depth < kForkDepth) {
      std::vector<Label> child_prefix = prefix;
      child_prefix.push_back(std::move(label));
      pool_->submit([this, recurse, next = std::move(next),
                     child_prefix = std::move(child_prefix),
                     depth]() mutable {
        recurse(std::move(next), depth + 1, child_prefix);
      });
    } else {
      prefix.push_back(std::move(label));
      recurse(std::move(next), depth + 1, prefix);
      prefix.pop_back();
    }
  }

  Policy& policy_;
  SearchOptions options_;
  std::size_t threads_;
  SharedVisitedSet visited_;
  par::TaskPool* pool_ = nullptr;

  std::atomic<bool> found_{false};
  std::atomic<bool> exhausted_{false};
  std::atomic<std::size_t> visited_count_{0};
  std::atomic<std::size_t> entered_{0};
  std::atomic<std::size_t> dedup_hits_{0};
  std::atomic<std::size_t> max_depth_{0};
  std::mutex result_mutex_;
  std::vector<Label> witness_;
};

}  // namespace cal::engine
