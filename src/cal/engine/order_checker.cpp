#include "cal/engine/order_checker.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <tuple>
#include <utility>
#include <vector>

namespace cal::engine {

namespace {

/// A point on the action-index line refined by an epsilon coordinate:
/// base + eps·ε for an infinitesimal ε. Realizes "strictly inside an
/// (inv, res) interval" and "just before a resolution point" without real
/// arithmetic; compared lexicographically.
struct Pt {
  std::int64_t base = 0;
  std::int64_t eps = 0;

  friend constexpr auto operator<=>(const Pt&, const Pt&) = default;
};

constexpr Pt kInfPt{std::numeric_limits<std::int64_t>::max(),
                    std::numeric_limits<std::int64_t>::max()};

/// Per-value segment: the (unique) insert and the matched removal, if any.
struct Segment {
  const OpRecord* ins = nullptr;
  const OpRecord* rm = nullptr;
};

/// Disjoint, non-touching forced-presence zones [start, end) keyed by
/// start. Merging on insert keeps resolution a single lookup + bump.
class ZoneMap {
 public:
  void add(Pt s, Pt e, std::size_t& zones_built) {
    if (!(s < e)) return;  // the insert point dodges everything
    ++zones_built;
    // Absorb every zone overlapping or touching [s, e).
    auto it = zones_.upper_bound(s);
    if (it != zones_.begin() && std::prev(it)->second >= s) --it;
    while (it != zones_.end() && it->first <= e) {
      s = std::min(s, it->first);
      e = std::max(e, it->second);
      it = zones_.erase(it);
    }
    zones_.emplace(s, e);
  }

  /// Earliest point >= c outside every zone (zones are merged and
  /// non-touching, so one bump past the containing zone's end suffices).
  [[nodiscard]] Pt resolve(Pt c, std::size_t& bumps) const {
    auto it = zones_.upper_bound(c);
    if (it != zones_.begin()) {
      const auto& prev = *std::prev(it);
      if (prev.second > c) {
        ++bumps;
        return prev.second;
      }
    }
    return c;
  }

 private:
  std::map<Pt, Pt> zones_;
};

/// One witness event: a completed singleton, ordered by resolution point.
/// Inserts sort before removals at an equal point, empty removals after
/// both; removal ties break in ascending value order (legal: the smaller
/// value is the minimum when removed first).
struct Event {
  Pt key;
  int rank = 0;
  std::int64_t val = 0;
  Operation op;
};

}  // namespace

std::optional<OrderCheckOutcome> order_check_priority_queue(
    const std::vector<OpRecord>& ops, const OrderCheckRequest& req) {
  OrderCheckOutcome out;
  auto reject = [&out]() -> std::optional<OrderCheckOutcome> {
    out.ok = false;
    out.witness.reset();
    return out;
  };

  // --- classify the operations into per-value segments -------------------
  std::map<std::int64_t, Segment> segments;  // ascending priority order
  std::vector<const OpRecord*> removals;
  std::vector<const OpRecord*> empties;
  for (const OpRecord& r : ops) {
    if (r.op.object != req.object) {
      // A completed operation of another object can never fire under this
      // spec; a pending one is droppable.
      if (!r.op.is_pending()) return reject();
      continue;
    }
    if (r.op.method == req.insert_method) {
      if (r.op.arg.kind() != Value::Kind::kInt) {
        if (r.op.is_pending()) continue;  // droppable
        return reject();                  // unfireable completed insert
      }
      if (!r.op.is_pending() && (r.op.ret->kind() != Value::Kind::kBool ||
                                 !r.op.ret->as_bool())) {
        return reject();  // insert only ever returns true
      }
      if (r.op.is_pending() && !req.complete_pending) continue;  // dropped
      Segment& seg = segments[r.op.arg.as_int()];
      if (seg.ins != nullptr) return std::nullopt;  // duplicate value
      seg.ins = &r;
    } else if (r.op.method == req.delete_method) {
      if (r.op.is_pending()) {
        if (!req.complete_pending) continue;  // dropped
        // Completing a pending removal means choosing its return value — a
        // genuine search; decline to the engine.
        return std::nullopt;
      }
      if (r.op.ret->kind() != Value::Kind::kPair) return reject();
      if (!r.op.ret->pair_ok()) {
        if (r.op.ret->pair_int() != 0) return reject();
        empties.push_back(&r);
      } else {
        removals.push_back(&r);
      }
    } else {
      if (!r.op.is_pending()) return reject();  // unknown completed method
    }
  }

  // --- match removals to their inserts ------------------------------------
  for (const OpRecord* rm : removals) {
    auto it = segments.find(rm->op.ret->pair_int());
    if (it == segments.end() || it->second.ins == nullptr) {
      return reject();  // removed a value never inserted
    }
    if (it->second.rm != nullptr) return reject();  // removed twice
    it->second.rm = rm;
  }

  // --- resolve removal points in ascending priority order -----------------
  ZoneMap zones;
  std::vector<Event> events;
  events.reserve(ops.size());
  auto res_pt = [](const OpRecord* r) {
    return r->res_index ? Pt{static_cast<std::int64_t>(*r->res_index), 0}
                        : kInfPt;
  };
  for (const auto& [v, seg] : segments) {
    ++out.values;
    if (seg.rm == nullptr) {
      if (seg.ins->res_index) {
        // Never removed: unavoidably present from its response on.
        zones.add(res_pt(seg.ins), kInfPt, out.zones);
        events.push_back(
            Event{res_pt(seg.ins), /*rank=*/0, v, seg.ins->op});
      }
      // A pending unmatched insert is simply dropped (firing it could
      // only obstruct other removals).
      continue;
    }
    const auto lo = static_cast<std::int64_t>(
        std::max(seg.ins->inv_index, seg.rm->inv_index));
    const Pt r = zones.resolve(Pt{lo, 1}, out.bumps);
    if (r >= res_pt(seg.rm)) return reject();  // no admissible point left
    zones.add(res_pt(seg.ins), r, out.zones);
    Operation ins_done = seg.ins->op;
    ins_done.ret = Value::boolean(true);  // completes a fired pending insert
    events.push_back(Event{std::min(res_pt(seg.ins), r), /*rank=*/0, v,
                           std::move(ins_done)});
    events.push_back(Event{r, /*rank=*/1, v, seg.rm->op});
  }

  // --- empty removals: a zone-free point inside the interval --------------
  for (const OpRecord* e : empties) {
    const Pt r =
        zones.resolve(Pt{static_cast<std::int64_t>(e->inv_index), 1},
                      out.bumps);
    if (r >= res_pt(e)) return reject();  // something is always present
    events.push_back(Event{r, /*rank=*/2,
                           static_cast<std::int64_t>(e->inv_index), e->op});
  }

  // --- witness: singletons in resolution order ----------------------------
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return std::tie(a.key, a.rank, a.val) < std::tie(b.key, b.rank, b.val);
  });
  CaTrace witness;
  for (Event& e : events) {
    witness.append(CaElement::singleton(req.object, std::move(e.op)));
  }
  out.ok = true;
  out.witness = std::move(witness);
  return out;
}

}  // namespace cal::engine
