// Interval-linearizability as a search-engine policy.
//
// Nodes are (spec state, closed-set, open-set, #completed closed);
// successors run one per-object *round*: any non-empty set of the
// object's currently open operations plus newly starting ones (New ⊆
// startable, Close ⊆ participants enumerated by bitmask — candidate sets
// are small), stepped through the per-search round memo. An operation may
// start only when every completed real-time predecessor has closed. The
// goal is every completed operation closed and nothing half-open that the
// history says returned. A label records one round's participants with
// their starts/ends flags; since labels sit at consecutive depths, a
// witness label path *is* the round sequence, and the checker reads each
// operation's interval (first round, last round) straight off it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "cal/engine/policy_base.hpp"
#include "cal/engine/search_engine.hpp"
#include "cal/history.hpp"
#include "cal/history_index.hpp"
#include "cal/interval_lin.hpp"
#include "cal/spec.hpp"

namespace cal::engine {

template <bool kShared>
class IntervalPolicy {
 public:
  struct Node {
    SpecState state;
    StateMask closed;
    StateMask open;
    std::size_t closed_completed;
  };
  /// One round: each participant's operation index plus whether its
  /// interval starts and/or ends here.
  struct Label {
    struct Part {
      std::size_t op;
      bool starts;
      bool ends;
    };
    std::vector<Part> parts;
  };

  IntervalPolicy(const std::vector<OpRecord>& ops, const IntervalSpec& spec,
                 bool complete_pending)
      : ops_(ops),
        spec_(spec),
        complete_pending_(complete_pending),
        index_(ops) {}

  std::vector<Node> roots() const {
    const std::size_t words = (ops_.size() + 63) / 64;
    return {Node{spec_.initial(), StateMask(words, 0), StateMask(words, 0),
                 0}};
  }

  /// Every completed operation has closed and nothing is left half-open
  /// that the history says returned.
  bool is_goal(const Node& n) const {
    if (n.closed_completed != index_.completed()) return false;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (mask_test(n.open, i) && !ops_[i].is_pending()) return false;
    }
    return true;
  }

  void encode(const Node& n, NodeKey& out) const {
    encode_state_and_masks(n.state, {&n.closed, &n.open}, out);
  }

  void on_enter(const Node&, std::size_t) {}
  bool cancelled() const { return false; }

  template <typename Emit>
  void expand(const Node& node, std::size_t /*depth*/,
              const std::vector<Label>& /*prefix*/, Emit&& emit) {
    // Rounds are per-object: participants are the currently open operations
    // of the object plus any newly starting ones.
    std::unordered_map<Symbol, std::vector<std::size_t>> startable;
    std::unordered_map<Symbol, std::vector<std::size_t>> open_by_object;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (mask_test(node.open, i)) {
        open_by_object[ops_[i].op.object].push_back(i);
      } else if (may_start(i, node)) {
        if (ops_[i].is_pending() && !complete_pending_) continue;
        startable[ops_[i].op.object].push_back(i);
      }
    }

    std::unordered_set<Symbol> objects;
    for (const auto& kv : startable) objects.insert(kv.first);
    for (const auto& kv : open_by_object) objects.insert(kv.first);

    for (Symbol object : objects) {
      const auto& st = startable[object];
      const auto& op = open_by_object[object];
      // Enumerate New ⊆ startable by bitmask (candidate sets are small).
      const std::size_t sn = st.size();
      for (std::size_t new_bits = 0; new_bits < (1ull << sn); ++new_bits) {
        std::vector<std::size_t> participants = op;
        std::vector<bool> starts(op.size(), false);
        for (std::size_t b = 0; b < sn; ++b) {
          if (new_bits & (1ull << b)) {
            participants.push_back(st[b]);
            starts.push_back(true);
          }
        }
        if (participants.empty()) continue;
        if (spec_.max_round_size() != 0 &&
            participants.size() > spec_.max_round_size()) {
          continue;
        }
        // Enumerate Close ⊆ participants.
        const std::size_t pn = participants.size();
        for (std::size_t close_bits = 0; close_bits < (1ull << pn);
             ++close_bits) {
          if (new_bits == 0 && close_bits == 0) continue;  // no-op round
          std::vector<IntervalOpRef> refs;
          refs.reserve(pn);
          for (std::size_t b = 0; b < pn; ++b) {
            refs.push_back(IntervalOpRef{ops_[participants[b]].op, starts[b],
                                         (close_bits >> b) & 1u ? true
                                                                : false});
          }
          if (!fire_round(node, object, participants, refs, emit)) return;
        }
      }
    }
  }

  [[nodiscard]] std::size_t step_cache_hits() const { return memo_.hits(); }
  [[nodiscard]] std::size_t step_cache_misses() const {
    return memo_.misses();
  }

 private:
  // An operation may start when every completed real-time predecessor has
  // *closed* (its response precedes our invocation in any explanation).
  bool may_start(std::size_t i, const Node& node) const {
    if (mask_test(node.closed, i) || mask_test(node.open, i)) return false;
    for (std::size_t j : index_.preds(i)) {
      if (!mask_test(node.closed, j)) return false;
    }
    return true;
  }

  /// spec_.round through the memo. The participants' op indices plus their
  /// (starts, ends) flags pin the query exactly — the round's outcome
  /// never depends on the round number or the masks. The returned
  /// reference stays valid across the recursion.
  const std::vector<IntervalRoundResult>& rounded(
      const SpecState& state, Symbol object,
      const std::vector<std::size_t>& participants,
      const std::vector<IntervalOpRef>& refs) {
    StepKey key;
    key.reserve(2 + participants.size() + state.size());
    key.push_back(static_cast<std::int64_t>(object.id()));
    key.push_back(static_cast<std::int64_t>(participants.size()));
    for (std::size_t b = 0; b < participants.size(); ++b) {
      key.push_back(static_cast<std::int64_t>(
          (participants[b] << 2) | (refs[b].starts ? 1u : 0u) |
          (refs[b].ends ? 2u : 0u)));
    }
    key.insert(key.end(), state.begin(), state.end());
    if (const auto* cached = memo_.find(key)) return *cached;
    return memo_.insert(std::move(key), spec_.round(state, object, refs));
  }

  /// False = the driver asked to stop.
  template <typename Emit>
  bool fire_round(const Node& node, Symbol object,
                  const std::vector<std::size_t>& participants,
                  const std::vector<IntervalOpRef>& refs, Emit& emit) {
    for (const IntervalRoundResult& rr :
         rounded(node.state, object, participants, refs)) {
      Node next{rr.next, node.closed, node.open, node.closed_completed};
      Label label;
      label.parts.reserve(refs.size());
      for (std::size_t b = 0; b < refs.size(); ++b) {
        const std::size_t i = participants[b];
        label.parts.push_back({i, refs[b].starts, refs[b].ends});
        if (refs[b].starts) mask_set(next.open, i);
        if (refs[b].ends) {
          mask_clear(next.open, i);
          mask_set(next.closed, i);
          if (!ops_[i].is_pending()) ++next.closed_completed;
        }
      }
      if (!emit(std::move(next), std::move(label))) return false;
    }
    return true;
  }

  const std::vector<OpRecord>& ops_;
  const IntervalSpec& spec_;
  bool complete_pending_;
  HistoryIndex index_;
  StepMemoFor<kShared, IntervalRoundResult> memo_;
};

}  // namespace cal::engine
