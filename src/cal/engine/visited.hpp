// Visited-set policies of the unified search engine.
//
// Every search in this library deduplicates flat `std::vector<int64_t>`
// node encodings, in one of two modes: *exact* (the full encoding is
// stored — zero false-prune risk, and the mode the explorer's sound state
// merging requires) or *fingerprint* (128-bit two-chain fingerprints,
// cal/fingerprint.hpp — 16 bytes per node at a ~2^-64 per-pair false-prune
// risk). These two wrappers put both modes behind one insert() so the
// engine drivers (engine/search_engine.hpp) never branch on the mode:
// VisitedSet is the single-threaded table, SharedVisitedSet the striped-
// lock table the parallel driver's workers share.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "cal/fingerprint.hpp"
#include "cal/parallel/sharded_set.hpp"
#include "cal/spec.hpp"

namespace cal::engine {

using NodeKey = std::vector<std::int64_t>;

/// Single-threaded visited set: exact stored keys or 128-bit fingerprints
/// behind one runtime switch.
class VisitedSet {
 public:
  explicit VisitedSet(bool exact) : exact_(exact) {}

  /// Dedups `key`; true iff it was new. The key is only copied when stored
  /// (exact mode, first sighting), so callers can reuse a scratch buffer.
  bool insert(const NodeKey& key) {
    if (exact_) {
      if (!exact_set_.insert(key).second) return false;
      exact_bytes_ += par::ShardedStateSet::key_bytes(key);
      return true;
    }
    return fp_set_.insert(fingerprint_key(key));
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return exact_ ? exact_set_.size() : fp_set_.size();
  }

  /// Bytes held by the table; the set only grows, so this is its peak
  /// (estimated key+node footprint in exact mode, table bytes otherwise).
  [[nodiscard]] std::size_t bytes() const noexcept {
    return exact_ ? exact_bytes_ : fp_set_.bytes();
  }

 private:
  struct KeyHash {
    std::size_t operator()(const NodeKey& k) const noexcept {
      return hash_state(k);
    }
  };

  bool exact_;
  std::unordered_set<NodeKey, KeyHash> exact_set_;
  std::size_t exact_bytes_ = 0;
  FingerprintSet fp_set_;
};

/// The sharded, striped-lock counterpart shared by the parallel driver's
/// workers: exactly one of any set of racing inserts of equal keys wins.
class SharedVisitedSet {
 public:
  explicit SharedVisitedSet(bool exact) : exact_(exact) {}

  bool insert(NodeKey&& key) {
    if (exact_) return exact_set_.insert(std::move(key));
    return fp_set_.insert(fingerprint_key(key));
  }

  /// Exact once concurrent inserters have quiesced.
  [[nodiscard]] std::size_t size() const {
    return exact_ ? exact_set_.size() : fp_set_.size();
  }

  [[nodiscard]] std::size_t bytes() const {
    return exact_ ? exact_set_.bytes() : fp_set_.bytes();
  }

 private:
  bool exact_;
  par::ShardedStateSet exact_set_;
  par::ShardedFingerprintSet fp_set_;
};

}  // namespace cal::engine
