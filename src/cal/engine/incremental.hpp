// Streaming (incremental) CAL membership checking.
//
// The batch CalChecker re-searches the whole history on every query. This
// frontend instead consumes actions *as they are published* — from a
// runtime::Recorder cursor, a file tail, or any other action stream — and
// re-decides membership window-by-window with bounded latency: a violation
// is reported within one window of the response that causes it.
//
// Algorithm. After window w the checker holds the *frontier*: every search
// state in which all operations completed by the end of window w have
// fired (plus any subset of still-pending invocations, whose return values
// the spec chose). The frontier is complete because every operation
// completed by window w precedes — in real time — every operation invoked
// later, so any witness for any extension must fire all of them before
// anything newer: every witness threads through a frontier state. Window
// w+1 then runs one engine collect-mode search (engine/search_engine.hpp)
// with the frontier as its roots and the newly visible operations as its
// alphabet, collecting the new frontier from its goal states. An empty
// frontier is a violation, and the final verdict after finish() equals the
// batch verdict on the full history (engine-equivalence tests pin this on
// the whole corpus).
//
// Two mechanisms keep this sound and scalable:
//
//  * pending returns — firing a still-pending invocation commits to the
//    return value the spec chose. Each frontier entry records these
//    choices; when the real response arrives, entries that guessed a
//    different value are dropped (and the guess participates in the
//    window-search node encoding, so explanations differing only in a
//    guess are not merged);
//  * retirement — an operation that has completed and is fired in *every*
//    frontier entry can never be unfired: it leaves the active set, so
//    window searches and node encodings scale with the (small) set of
//    still-undecided operations, not with the length of the run.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cal/action.hpp"
#include "cal/ca_trace.hpp"
#include "cal/history.hpp"
#include "cal/spec.hpp"
#include "cal/value.hpp"

namespace cal::engine {

struct IncrementalOptions {
  /// Actions consumed between window checks (the violation-detection
  /// latency bound). finish() checks any shorter remainder.
  std::size_t window = 16;
  /// Per-window node cap; 0 = unlimited. Tripping it makes the stream
  /// verdict inconclusive (`exhausted`), mirroring the batch checker.
  std::size_t max_visited = 0;
  /// Accept explanations that fire invocations left pending at the end of
  /// the stream (completion by response extension), as in CalCheckOptions.
  /// Window searches always fire mid-stream pending operations — those may
  /// still complete later — so with this off the restriction is applied at
  /// finish(): explanations that fired a never-completed operation are
  /// discarded.
  bool complete_pending = true;
  /// Worker threads per window search (engine parallel driver); 1 =
  /// sequential, 0 = one per hardware thread.
  std::size_t threads = 1;
  /// Exact stored-key dedup instead of 128-bit fingerprints.
  bool exact_visited = false;
  /// Carry a full witness trace in every frontier entry (off saves the
  /// copying on long runs; witness() is then unavailable).
  bool track_witness = true;
};

struct IncrementalStatus {
  /// No violation so far (final verdict once `finished`).
  bool ok = true;
  /// A window search hit max_visited; `ok` is then inconclusive-negative.
  bool exhausted = false;
  /// finish() was called; `ok` is the batch-equivalent verdict.
  bool finished = false;
  std::size_t actions_consumed = 0;
  std::size_t operations = 0;  ///< invocations seen
  std::size_t completed = 0;   ///< responses seen
  std::size_t windows_checked = 0;
  /// Surviving explanations after the last window check.
  std::size_t frontier_size = 1;
  /// Operations still in play for window searches (not yet retired).
  std::size_t active_ops = 0;
  std::size_t retired_ops = 0;
  /// Cumulative engine nodes over all window searches.
  std::size_t visited_states = 0;
  /// 1-based window of the violation; 0 = none.
  std::size_t violation_window = 0;
  /// Human-readable cause when !ok.
  std::string reason;
};

/// One surviving explanation: a spec state reachable by firing exactly the
/// listed active operations (every retired one, and for the pending ones
/// among them the return values committed to). Implementation detail of
/// IncrementalChecker, public only for the window-search policy.
struct FrontierEntry {
  SpecState state;
  /// Global ids of fired, non-retired operations, ascending.
  std::vector<std::size_t> fired;
  /// Return values committed to for fired-while-pending operations,
  /// ascending by global id (a subset of `fired`).
  std::vector<std::pair<std::size_t, Value>> pending_rets;
  /// Fired CA-elements from the start of the stream (when track_witness).
  std::vector<CaElement> witness;
};

class IncrementalChecker {
 public:
  explicit IncrementalChecker(const CaSpec& spec,
                              IncrementalOptions options = {});

  /// Consumes one action; runs a window check every `options.window`
  /// actions. After a violation (or finish()) further pushes are ignored.
  void push(const Action& action);

  /// Convenience: push every action of `history` in order.
  void push(const History& history);

  /// Checks the buffered remainder and seals the verdict: afterwards
  /// status().ok equals CalChecker::check on the full consumed history
  /// (modulo `exhausted` and the fingerprint false-prune risk).
  void finish();

  [[nodiscard]] bool ok() const noexcept { return status_.ok; }
  [[nodiscard]] const IncrementalStatus& status() const noexcept {
    return status_;
  }

  /// On acceptance (after finish(), with track_witness): a witness trace
  /// explaining every completed operation of the stream.
  [[nodiscard]] std::optional<CaTrace> witness() const;

 private:
  void fail(std::string reason);
  /// Drops frontier entries whose committed pending returns contradict the
  /// responses that arrived since the previous window.
  void apply_responses();
  void check_window();
  /// Retires operations that completed and are fired in every entry.
  void retire();

  const CaSpec& spec_;
  IncrementalOptions options_;
  IncrementalStatus status_;

  std::vector<OpRecord> ops_;  ///< every operation ever seen, by global id
  std::vector<bool> retired_;
  std::unordered_map<ThreadId, std::size_t> open_;  ///< tid → open op id
  std::vector<std::size_t> newly_completed_;  ///< since the last window
  std::size_t buffered_ = 0;  ///< actions since the last window check
  std::vector<FrontierEntry> frontier_;
};

}  // namespace cal::engine
