// 128-bit node fingerprints and a flat open-addressing fingerprint set.
//
// The checkers' visited sets deduplicate flat `std::vector<int64_t>` node
// encodings (spec state + fired mask). Storing the full encoding per node
// is the dominant memory cost of a search; a 128-bit fingerprint — two
// independent mixes of the encoding — shrinks each entry to 16 bytes in a
// probed flat table, at a false-positive (false *prune*) probability of
// ~2^-64 per node pair. That risk is acceptable for a checker diagnostic
// and is gated: `CalCheckOptions::exact_visited` restores the stored-key
// path, and the equivalence suites pin identical verdicts between modes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cal {

struct Fingerprint128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(Fingerprint128 a, Fingerprint128 b) noexcept {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

/// Murmur3's 64-bit finalizer: full avalanche, bijective.
[[nodiscard]] inline std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

/// Fingerprints a node encoding with two independently seeded and
/// independently folded mix chains. The all-zero fingerprint is remapped
/// (it marks an empty table slot).
[[nodiscard]] inline Fingerprint128 fingerprint_key(
    const std::vector<std::int64_t>& key) noexcept {
  std::uint64_t a = 0x9e3779b97f4a7c15ull ^
                    (key.size() * 0xff51afd7ed558ccdull);
  std::uint64_t b = 0xc2b2ae3d27d4eb4full +
                    (key.size() * 0x165667b19e3779f9ull);
  for (std::int64_t x : key) {
    const auto w = static_cast<std::uint64_t>(x);
    a = mix64(a ^ w);
    b = mix64(b + (w ^ 0x9e3779b97f4a7c15ull));
  }
  Fingerprint128 fp{a, b};
  if (fp.lo == 0 && fp.hi == 0) fp.lo = 1;
  return fp;
}

/// A grow-on-demand open-addressing set of 128-bit fingerprints: flat
/// storage, linear probing, max load factor 7/10 (expected probe chains
/// stay short and the 16-byte slots are cache-dense). Entries are never
/// erased, so the table's byte footprint is also its peak.
class FingerprintSet {
 public:
  explicit FingerprintSet(std::size_t initial_capacity = 16) {
    std::size_t cap = 16;
    while (cap < initial_capacity) cap <<= 1;
    slots_.assign(cap, Fingerprint128{});
  }

  /// Inserts `fp` (which must not be all-zero — fingerprint_key guarantees
  /// that); returns true iff it was not already present.
  bool insert(Fingerprint128 fp) {
    if (10 * (size_ + 1) > 7 * slots_.size()) grow();
    const std::size_t idx = probe(slots_, fp);
    if (!is_empty(slots_[idx])) return false;
    slots_[idx] = fp;
    ++size_;
    return true;
  }

  [[nodiscard]] bool contains(Fingerprint128 fp) const {
    return !is_empty(slots_[probe(slots_, fp)]);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Bytes held by the table (== peak: the table never shrinks).
  [[nodiscard]] std::size_t bytes() const noexcept {
    return slots_.size() * sizeof(Fingerprint128);
  }

 private:
  static bool is_empty(Fingerprint128 s) noexcept {
    return s.lo == 0 && s.hi == 0;
  }

  /// Index of `fp`'s slot: its own if present, else the first free one.
  static std::size_t probe(const std::vector<Fingerprint128>& slots,
                           Fingerprint128 fp) noexcept {
    const std::size_t mask = slots.size() - 1;
    std::size_t idx = static_cast<std::size_t>(fp.lo) & mask;
    while (!is_empty(slots[idx]) && !(slots[idx] == fp)) {
      idx = (idx + 1) & mask;
    }
    return idx;
  }

  void grow() {
    std::vector<Fingerprint128> next(slots_.size() * 2, Fingerprint128{});
    for (Fingerprint128 fp : slots_) {
      if (!is_empty(fp)) next[probe(next, fp)] = fp;
    }
    slots_.swap(next);
  }

  std::vector<Fingerprint128> slots_;
  std::size_t size_ = 0;
};

}  // namespace cal
