// Specification interfaces.
//
// The paper specifies objects by *sets of CA-traces* (§3.1) generated from
// Hoare-style per-operation descriptions (§4). Executably, a specification
// is a (possibly nondeterministic) abstract state machine whose transitions
// consume CA-elements: the trace-set of the spec is the set of element
// sequences the machine can consume from its initial state. All such
// trace-sets are prefix-closed by construction, matching Def. 6's
// requirements on object systems.
//
// States are encoded as flat `std::vector<int64_t>` blobs so the checkers
// can hash and memoize them without knowing their structure.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cal/ca_trace.hpp"
#include "cal/history.hpp"
#include "cal/operation.hpp"
#include "cal/symbol.hpp"

namespace cal {

/// Opaque, hashable abstract-state encoding.
using SpecState = std::vector<std::int64_t>;

[[nodiscard]] inline std::size_t hash_state(const SpecState& s) noexcept {
  // FNV-style fold, hardened for short states: the length seeds the hash
  // (so zero elements and truncations move it) and a murmur3 avalanche
  // finishes it (the bare xor-multiply fold lets small states cancel —
  // e.g. {0, (c·p)⊕((c⊕1)·p)} and {1, 0} collided exactly; see
  // CoreTypes.HashStateSeparatesShortStates).
  std::uint64_t h = 0xcbf29ce484222325ull ^
                    (s.size() * 0x9e3779b97f4a7c15ull);
  for (std::int64_t x : s) {
    h ^= static_cast<std::uint64_t>(x);
    h *= 0x100000001b3ull;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return static_cast<std::size_t>(h);
}

/// One possible outcome of consuming a candidate CA-element: the successor
/// abstract state and the element with all pending returns filled in.
struct CaStepResult {
  SpecState next;
  CaElement element;
};

/// Verdict of a spec's non-enumerative membership decision
/// (CaSpec::order_check): a definitive accept/reject computed from
/// order-theoretic constraints instead of the engine's state search.
struct OrderCheckOutcome {
  bool ok = false;
  /// On acceptance: a witness trace T ∈ 𝒯 with H^c ⊑CAL T, like the
  /// engine's.
  std::optional<CaTrace> witness;
  /// Effort counters, mirroring the engine's visited/pruned style:
  /// per-priority value segments examined, forced-presence zones built,
  /// and candidate points bumped past a zone.
  std::size_t values = 0;
  std::size_t zones = 0;
  std::size_t bumps = 0;

  explicit operator bool() const noexcept { return ok; }
};

/// A concurrency-aware specification: which CA-elements may occur, in which
/// abstract states, and what they do to the state.
class CaSpec {
 public:
  virtual ~CaSpec() = default;

  [[nodiscard]] virtual SpecState initial() const = 0;

  /// Largest number of operations a single CA-element of this spec may
  /// contain (0 = unbounded). The checker only enumerates candidate sets up
  /// to this size — e.g. 2 for the exchanger, 1 for purely sequential specs.
  [[nodiscard]] virtual std::size_t max_element_size() const = 0;

  /// All ways the spec can consume a CA-element o.{ops}. Operations with
  /// empty `ret` are *pending* invocations; each returned CaStepResult must
  /// fill in their return values (this is how the checker enumerates
  /// completions of the history, Def. 2). Returns empty if the element is
  /// not admissible in `state`.
  [[nodiscard]] virtual std::vector<CaStepResult> step(
      const SpecState& state, Symbol object,
      const std::vector<Operation>& ops) const = 0;

  /// Conservative feasibility pre-filter for the checkers' candidate-subset
  /// enumeration. Called with a non-empty set of operations of `object`
  /// (pending returns not yet filled in); must return false ONLY when no
  /// admissible CA-element of this spec — in any abstract state — contains
  /// all of `ops` together. The checkers prune every superset of an
  /// incompatible set without consulting step(), so a spec that cannot
  /// decide cheaply must return true (the default).
  [[nodiscard]] virtual bool compatible(
      Symbol object, const std::vector<Operation>& ops) const {
    (void)object;
    (void)ops;
    return true;
  }

  /// Interchangeability class of one *completed* operation for the
  /// checker's symmetry reduction (0 = unique, never merged). Two
  /// operations with the same nonzero class must be fully interchangeable
  /// in the spec: for every abstract state and every candidate element,
  /// swapping one for the other yields an admissible element with the same
  /// successor states and the same completion choices. (Thread ids do not
  /// break interchangeability — a CA-element never inspects tids — but
  /// arguments and return values do, so classes must key on them.)
  /// CalPolicy then counts, rather than identifies, fired operations of a
  /// class — see cal/engine/cal_policy.hpp.
  [[nodiscard]] virtual std::uint64_t symmetry_class(
      Symbol object, const Operation& op) const {
    (void)object;
    (void)op;
    return 0;
  }

  /// Non-enumerative membership decision hook. A spec that admits a
  /// polynomial order-theoretic characterization of CAL membership (e.g.
  /// the priority queue's per-priority ordering constraints) may decide
  /// the whole history here, bypassing the engine search. Returning an
  /// outcome is a *definitive* verdict and must equal the engine's on the
  /// same operations under the same `complete_pending`; returning nullopt
  /// declines (instance outside the characterization's fragment) and the
  /// checker falls back to the engine. The default declines everything.
  /// DESIGN.md § "Order-checked specs" states the soundness obligations.
  [[nodiscard]] virtual std::optional<OrderCheckOutcome> order_check(
      const std::vector<OpRecord>& ops, bool complete_pending) const {
    (void)ops;
    (void)complete_pending;
    return std::nullopt;
  }
};

/// One possible outcome of a sequential-spec transition.
struct SeqStepResult {
  SpecState next;
  Value ret;
};

/// A classical sequential specification: an abstract state machine consuming
/// one operation at a time (Herlihy & Wing style). Used by the classical
/// linearizability checker and, via SeqAsCaSpec, by the CAL checker (every
/// sequential spec is the degenerate CA-spec with singleton elements).
class SequentialSpec {
 public:
  virtual ~SequentialSpec() = default;

  [[nodiscard]] virtual SpecState initial() const = 0;

  /// All ways `method(arg)` may execute in `state`. If `ret` is set, only
  /// outcomes returning exactly `ret` are produced; if empty (pending
  /// operation), every admissible return is produced.
  [[nodiscard]] virtual std::vector<SeqStepResult> step(
      const SpecState& state, ThreadId tid, Symbol object, Symbol method,
      const Value& arg, const std::optional<Value>& ret) const = 0;
};

/// Adapter: view a sequential specification as a CA-spec whose elements are
/// all singletons. A history is classically linearizable w.r.t. S iff it is
/// CAL w.r.t. SeqAsCaSpec(S) — the formal sense in which CAL generalizes
/// linearizability (§3). Subclassable so sequential specs with extra
/// checker capabilities (symmetry classes, order_check) can layer them on
/// (cal/specs/priority_queue_spec.hpp).
class SeqAsCaSpec : public CaSpec {
 public:
  explicit SeqAsCaSpec(std::shared_ptr<const SequentialSpec> seq)
      : seq_(std::move(seq)) {}

  [[nodiscard]] SpecState initial() const override { return seq_->initial(); }
  [[nodiscard]] std::size_t max_element_size() const override { return 1; }
  [[nodiscard]] std::vector<CaStepResult> step(
      const SpecState& state, Symbol object,
      const std::vector<Operation>& ops) const override;
  /// Sequential elements are singletons; any larger set is infeasible.
  [[nodiscard]] bool compatible(
      Symbol /*object*/, const std::vector<Operation>& ops) const override {
    return ops.size() <= 1;
  }

 private:
  std::shared_ptr<const SequentialSpec> seq_;
};

}  // namespace cal
