// A sharded, striped-lock deduplication set for search-state keys.
//
// Both search engines memoize flat `std::vector<int64_t>` encodings
// (spec-state + fired-mask for the CAL checker, World::encode for the
// explorer) keyed by cal::hash_state. Under the parallel engines many
// workers insert concurrently; striping the table over independently
// locked shards keeps the visited check off the contention critical path
// without resorting to a lock-free table (the shards also keep TSan
// happy). The shard index and the bucket hash reuse the same hash value,
// computed once per insert.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "cal/fingerprint.hpp"
#include "cal/spec.hpp"

namespace cal::par {

class ShardedStateSet {
 public:
  using Key = std::vector<std::int64_t>;

  /// `shard_count` is rounded up to a power of two (default 64 — enough
  /// stripes that a dozen workers rarely collide).
  explicit ShardedStateSet(std::size_t shard_count = 64) {
    std::size_t n = 1;
    while (n < shard_count) n <<= 1;
    mask_ = n - 1;
    shards_ = std::make_unique<Shard[]>(n);
  }

  /// Inserts `key`; returns true iff it was not already present. Thread
  /// safe; exactly one of any set of racing inserts of equal keys wins.
  bool insert(const Key& key) {
    const std::size_t h = hash_state(key);
    Shard& shard = shards_[shard_of(h)];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (!shard.set.insert(key).second) return false;
    shard.bytes += key_bytes(key);
    return true;
  }

  /// As above, destructively (spares the copy when the key is new).
  bool insert(Key&& key) {
    const std::size_t h = hash_state(key);
    const std::size_t kb = key_bytes(key);
    Shard& shard = shards_[shard_of(h)];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (!shard.set.insert(std::move(key)).second) return false;
    shard.bytes += kb;
    return true;
  }

  [[nodiscard]] bool contains(const Key& key) const {
    const std::size_t h = hash_state(key);
    const Shard& shard = shards_[shard_of(h)];
    std::lock_guard<std::mutex> lock(shard.mu);
    return shard.set.count(key) != 0;
  }

  /// Total elements. Exact once concurrent inserters have quiesced.
  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (std::size_t i = 0; i <= mask_; ++i) {
      std::lock_guard<std::mutex> lock(shards_[i].mu);
      total += shards_[i].set.size();
    }
    return total;
  }

  /// Estimated bytes held by the stored keys (payload + per-node overhead);
  /// the set only grows, so this is also its peak.
  [[nodiscard]] std::size_t bytes() const {
    std::size_t total = 0;
    for (std::size_t i = 0; i <= mask_; ++i) {
      std::lock_guard<std::mutex> lock(shards_[i].mu);
      total += shards_[i].bytes;
    }
    return total;
  }

  /// Estimated footprint of one stored key: payload, vector header, and
  /// eight pointers of per-node overhead — hash-node link + cached hash,
  /// the bucket slot (with growth slack), and the two 16-byte-aligned heap
  /// chunk headers (node + vector data) a node-based table really pays.
  [[nodiscard]] static std::size_t key_bytes(const Key& key) noexcept {
    return key.size() * sizeof(std::int64_t) + sizeof(Key) +
           8 * sizeof(void*);
  }

 private:
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return hash_state(k);
    }
  };
  struct alignas(64) Shard {  // own cache line: no lock false-sharing
    mutable std::mutex mu;
    std::unordered_set<Key, KeyHash> set;
    std::size_t bytes = 0;
  };

  // Buckets inside a shard use the hash's low bits; pick the shard from
  // the high bits so the two partitions stay independent.
  [[nodiscard]] std::size_t shard_of(std::size_t h) const noexcept {
    return (h >> 48 ^ h >> 24) & mask_;
  }

  std::unique_ptr<Shard[]> shards_;
  std::size_t mask_ = 0;
};

/// The fingerprinted counterpart: shards of flat open-addressing
/// Fingerprint128 tables (cal/fingerprint.hpp) behind the same striped
/// locks. 16 bytes per visited node regardless of encoding length — the
/// parallel CAL engine's default dedup table; ShardedStateSet remains the
/// `exact_visited` path (and the explorer's sound merging table).
class ShardedFingerprintSet {
 public:
  explicit ShardedFingerprintSet(std::size_t shard_count = 64) {
    std::size_t n = 1;
    while (n < shard_count) n <<= 1;
    mask_ = n - 1;
    shards_ = std::make_unique<Shard[]>(n);
  }

  /// Inserts the fingerprint; returns true iff it was not already present.
  bool insert(Fingerprint128 fp) {
    // The shard comes from the hi word, probing inside a shard from the lo
    // word (FingerprintSet), so the two partitions stay independent.
    Shard& shard = shards_[static_cast<std::size_t>(fp.hi) & mask_];
    std::lock_guard<std::mutex> lock(shard.mu);
    return shard.set.insert(fp);
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (std::size_t i = 0; i <= mask_; ++i) {
      std::lock_guard<std::mutex> lock(shards_[i].mu);
      total += shards_[i].set.size();
    }
    return total;
  }

  [[nodiscard]] std::size_t bytes() const {
    std::size_t total = 0;
    for (std::size_t i = 0; i <= mask_; ++i) {
      std::lock_guard<std::mutex> lock(shards_[i].mu);
      total += shards_[i].set.bytes();
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    mutable std::mutex mu;
    FingerprintSet set{16};
  };

  std::unique_ptr<Shard[]> shards_;
  std::size_t mask_ = 0;
};

}  // namespace cal::par
