#include "cal/parallel/task_pool.hpp"

namespace cal::par {

namespace {

// Identifies the worker a thread belongs to, so submit() can route to the
// submitter's own deque. One pool is alive per engine invocation; nested
// pools are not used, so a single (pool, index) pair suffices.
thread_local TaskPool* tls_pool = nullptr;
thread_local std::size_t tls_index = 0;

}  // namespace

TaskPool::TaskPool(std::size_t threads) {
  const std::size_t n = resolve_threads(threads);
  queues_.resize(n);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void TaskPool::submit(Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tls_pool == this) {
      queues_[tls_index].deque.push_back(std::move(task));
    } else {
      external_.push_back(std::move(task));
    }
    ++in_flight_;
  }
  work_cv_.notify_one();
}

bool TaskPool::try_pop(std::size_t self, Task& out) {
  // Own deque first, newest task (LIFO — depth-first locality) …
  if (!queues_[self].deque.empty()) {
    out = std::move(queues_[self].deque.back());
    queues_[self].deque.pop_back();
    return true;
  }
  if (!external_.empty()) {
    out = std::move(external_.front());
    external_.pop_front();
    return true;
  }
  // … then steal the oldest task of a peer (FIFO — biggest subtree).
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    Queue& victim = queues_[(self + k) % queues_.size()];
    if (!victim.deque.empty()) {
      out = std::move(victim.deque.front());
      victim.deque.pop_front();
      return true;
    }
  }
  return false;
}

void TaskPool::worker_loop(std::size_t index) {
  tls_pool = this;
  tls_index = index;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || try_pop(index, task); });
      if (!task) return;  // shutdown with empty queues
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void TaskPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return in_flight_ == 0; });
}

}  // namespace cal::par
