// A small work-stealing task pool — the shared substrate of the parallel
// search engines (cal/cal_checker.cpp, sched/explorer.cpp) and the
// cal-check --jobs batch pipeline.
//
// Design constraints, in order:
//   * correctness under TSan — every queue is a plain mutex-guarded deque
//     (one per worker, so contention is striped, plus an overflow queue
//     for external submitters); no lock-free cleverness on the control
//     path, the searches themselves are the hot path;
//   * recursive submission — tasks may submit subtasks (the DFS engines
//     fork the top levels of their search trees from inside pool workers);
//     a worker pushes to its *own* deque and pops LIFO for locality, while
//     thieves steal FIFO from the opposite end;
//   * a quiescence barrier — wait_idle() blocks the (external) caller
//     until every submitted task, including transitively spawned ones,
//     has finished.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cal::par {

/// Resolves a user-facing thread-count option: 0 = one per hardware
/// thread, otherwise the value itself (minimum 1).
[[nodiscard]] inline std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

class TaskPool {
 public:
  using Task = std::function<void()>;

  /// Spawns `threads` workers (0 = one per hardware thread).
  explicit TaskPool(std::size_t threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task. Callable from anywhere; when called from a pool
  /// worker the task lands on that worker's own deque (stolen FIFO by
  /// idle peers). Must not be called after/concurrently with destruction.
  void submit(Task task);

  /// Blocks until no task is queued or running. Call from outside the
  /// pool only (a worker waiting for quiescence would deadlock).
  void wait_idle();

 private:
  struct Queue {
    std::deque<Task> deque;  // guarded by TaskPool::mu_
  };

  void worker_loop(std::size_t index);
  bool try_pop(std::size_t self, Task& out);

  // One mutex guards all deques: the engines submit coarse tasks (whole
  // subtrees), so queue traffic is orders of magnitude rarer than search
  // steps and a single lock keeps wait_idle and shutdown trivially
  // race-free.
  std::mutex mu_;
  std::condition_variable work_cv_;   // workers: work available / shutdown
  std::condition_variable idle_cv_;   // wait_idle(): in_flight_ hit zero
  std::vector<Queue> queues_;         // queues_[i] owned by workers_[i]
  std::deque<Task> external_;         // submissions from non-worker threads
  std::size_t in_flight_ = 0;         // queued + currently executing
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cal::par
