// Trace replay: membership of a concrete CA-trace in a specification's
// trace-set (T ∈ 𝒯), and the paper's WFS predicate ("a sequential history of
// stack operations is well-defined over an initial stack", §4).
//
// Used wherever an *already recorded* auxiliary trace 𝒯 must be validated —
// the model checker checks the final 𝒯 of every execution, and the
// elimination-stack verification checks 𝔽_ES(𝒯) against the sequential
// stack spec.
#pragma once

#include <optional>
#include <string>

#include "cal/ca_trace.hpp"
#include "cal/spec.hpp"

namespace cal {

struct ReplayResult {
  bool ok = false;
  /// When !ok: index of the first inadmissible element plus a reason.
  std::size_t failed_at = 0;
  std::string reason;
  /// When ok: the abstract state after consuming the whole trace.
  SpecState final_state;

  explicit operator bool() const noexcept { return ok; }
};

/// Decides T ∈ 𝒯(spec): folds spec.step over the trace's elements; each
/// element must be reproduced exactly by some admissible step. Because specs
/// may be nondeterministic, the replay forks on every matching successor
/// (DFS over abstract states).
[[nodiscard]] ReplayResult replay_ca(const CaTrace& trace, const CaSpec& spec);

/// Decides WFS: every element is a singleton and the operation sequence
/// replays against the sequential spec from its initial state.
[[nodiscard]] ReplayResult replay_sequential(const CaTrace& trace,
                                             const SequentialSpec& spec);

}  // namespace cal
