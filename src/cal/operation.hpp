// Operations: matched invocation/response pairs (Def. 4 of the paper).
//
// An operation (t, f(n) ▷ n') of object o pairs an invocation
// (t, inv o.f(n)) with its matching response (t, res o.f ▷ n'). Inside the
// checkers, a pending invocation — one the history never answers — is
// represented by an Operation whose `ret` is empty; a *completion* of the
// history (Def. 2) either supplies the return value or drops the operation.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "cal/symbol.hpp"
#include "cal/value.hpp"

namespace cal {

using ThreadId = std::uint32_t;

struct Operation {
  ThreadId tid = 0;
  Symbol object;
  Symbol method;
  Value arg;
  std::optional<Value> ret;  ///< empty = pending (no matching response yet)

  [[nodiscard]] bool is_pending() const noexcept { return !ret.has_value(); }

  [[nodiscard]] static Operation make(ThreadId t, Symbol o, Symbol f,
                                      Value arg, Value ret) {
    return Operation{t, o, f, std::move(arg), std::move(ret)};
  }
  [[nodiscard]] static Operation pending(ThreadId t, Symbol o, Symbol f,
                                         Value arg) {
    return Operation{t, o, f, std::move(arg), std::nullopt};
  }

  friend bool operator==(const Operation& a, const Operation& b) noexcept {
    return a.tid == b.tid && a.object == b.object && a.method == b.method &&
           a.arg == b.arg && a.ret == b.ret;
  }
  friend bool operator!=(const Operation& a, const Operation& b) noexcept {
    return !(a == b);
  }
  /// Canonical order used when normalizing the operation *sets* inside
  /// CA-elements (sets are stored as sorted vectors).
  friend bool operator<(const Operation& a, const Operation& b) noexcept {
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.object != b.object) return a.object < b.object;
    if (a.method != b.method) return a.method < b.method;
    if (a.arg != b.arg) return a.arg < b.arg;
    if (a.ret.has_value() != b.ret.has_value()) return !a.ret.has_value();
    if (a.ret && b.ret && *a.ret != *b.ret) return *a.ret < *b.ret;
    return false;
  }

  [[nodiscard]] std::size_t hash() const noexcept {
    std::size_t h = std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(tid) << 32) ^
        (static_cast<std::uint64_t>(object.id()) << 16) ^ method.id());
    h ^= arg.hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    if (ret) h ^= ret->hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
  }

  /// E.g. "(t1, E.exchange(3) ▷ (true,4))".
  [[nodiscard]] std::string to_string() const;
};

}  // namespace cal

template <>
struct std::hash<cal::Operation> {
  std::size_t operator()(const cal::Operation& op) const noexcept {
    return op.hash();
  }
};
