// Object actions: invocations and responses (Def. 1 of the paper).
//
// An invocation (t, inv o.f(n)) means thread t started executing method f on
// object o with argument n; a response (t, res o.f ▷ n') means the execution
// terminated with return value n'.
#pragma once

#include <cstdint>
#include <string>

#include "cal/symbol.hpp"
#include "cal/value.hpp"

namespace cal {

/// Dense thread identifier (t ∈ T in the paper).
using ThreadId = std::uint32_t;

/// An invocation or response action.
struct Action {
  enum class Kind : std::uint8_t { kInvoke, kRespond };

  Kind kind = Kind::kInvoke;
  ThreadId tid = 0;    ///< tid(ψ)
  Symbol object;       ///< oid(ψ)
  Symbol method;       ///< fid(ψ)
  Value payload;       ///< argument for invocations, return value for responses

  [[nodiscard]] bool is_invoke() const noexcept {
    return kind == Kind::kInvoke;
  }
  [[nodiscard]] bool is_respond() const noexcept {
    return kind == Kind::kRespond;
  }

  [[nodiscard]] static Action invoke(ThreadId t, Symbol o, Symbol f,
                                     Value arg = Value::unit()) {
    return Action{Kind::kInvoke, t, o, f, std::move(arg)};
  }
  [[nodiscard]] static Action respond(ThreadId t, Symbol o, Symbol f,
                                      Value ret = Value::unit()) {
    return Action{Kind::kRespond, t, o, f, std::move(ret)};
  }

  friend bool operator==(const Action& a, const Action& b) noexcept {
    return a.kind == b.kind && a.tid == b.tid && a.object == b.object &&
           a.method == b.method && a.payload == b.payload;
  }
  friend bool operator!=(const Action& a, const Action& b) noexcept {
    return !(a == b);
  }

  /// E.g. "(t1, inv E.exchange(3))" / "(t1, res E.exchange ▷ (true,4))".
  [[nodiscard]] std::string to_string() const;
};

}  // namespace cal
