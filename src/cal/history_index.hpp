// Per-history search index shared by the three checkers: real-time
// predecessor lists, the completed count, and the fired-mask helpers.
//
// The predecessors of operation i are exactly the completed operations
// whose response precedes i's invocation (Def. 3). Sorting the completed
// operations by response index makes each predecessor list a *prefix* of
// one shared order: a single sweep over the operations in invocation order
// assigns every i its prefix length. Construction is O(n log n) and the
// index stores O(n) words, replacing the old all-pairs O(n²) scan.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "cal/history.hpp"

namespace cal {

/// Fired/closed/open sets over operation indices, one bit each.
using StateMask = std::vector<std::uint64_t>;

[[nodiscard]] inline bool mask_test(const StateMask& m, std::size_t i) {
  return (m[i / 64] >> (i % 64)) & 1u;
}
inline void mask_set(StateMask& m, std::size_t i) {
  m[i / 64] |= (1ull << (i % 64));
}
inline void mask_clear(StateMask& m, std::size_t i) {
  m[i / 64] &= ~(1ull << (i % 64));
}

class HistoryIndex {
 public:
  explicit HistoryIndex(const std::vector<OpRecord>& ops) {
    const std::size_t n = ops.size();
    pred_count_.assign(n, 0);
    by_res_.reserve(n);
    std::vector<std::size_t> by_inv(n);
    for (std::size_t i = 0; i < n; ++i) {
      by_inv[i] = i;
      if (!ops[i].is_pending()) {
        ++completed_;
        by_res_.push_back(i);
      }
    }
    std::sort(by_res_.begin(), by_res_.end(),
              [&ops](std::size_t a, std::size_t b) {
                return *ops[a].res_index < *ops[b].res_index;
              });
    std::sort(by_inv.begin(), by_inv.end(),
              [&ops](std::size_t a, std::size_t b) {
                return ops[a].inv_index < ops[b].inv_index;
              });
    // Sweep in invocation order: the returned-before-me prefix only grows.
    std::size_t k = 0;
    for (std::size_t i : by_inv) {
      while (k < by_res_.size() &&
             *ops[by_res_[k]].res_index < ops[i].inv_index) {
        ++k;
      }
      pred_count_[i] = k;
    }
  }

  /// Real-time predecessors of operation i, as indices into the checker's
  /// operation array (a prefix of the response-sorted order).
  [[nodiscard]] std::span<const std::size_t> preds(std::size_t i) const {
    return {by_res_.data(), pred_count_[i]};
  }

  /// True iff i is unfired and every real-time predecessor has fired.
  [[nodiscard]] bool enabled(std::size_t i, const StateMask& mask) const {
    if (mask_test(mask, i)) return false;
    for (std::size_t j : preds(i)) {
      if (!mask_test(mask, j)) return false;
    }
    return true;
  }

  [[nodiscard]] std::size_t completed() const noexcept { return completed_; }

 private:
  std::vector<std::size_t> by_res_;    ///< completed ops, by response index
  std::vector<std::size_t> pred_count_;
  std::size_t completed_ = 0;
};

}  // namespace cal
