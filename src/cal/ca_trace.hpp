// CA-traces (Def. 4 of the paper).
//
// A CA-element o.S pairs an object o with a non-empty *set* S of completed
// operations of o — a set of operations that "seem to take effect
// simultaneously". A CA-trace is a sequence of CA-elements. The projection
// T|t keeps the CA-elements mentioning thread t (including the operations of
// *other* threads inside those elements); T|o keeps the elements of object o.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cal/operation.hpp"
#include "cal/symbol.hpp"

namespace cal {

class CaElement {
 public:
  CaElement() = default;
  /// Builds o.S. Operations are canonicalized (sorted); every operation must
  /// be a *completed* operation of object `o` — enforced with assertions in
  /// debug builds and by normalize() here.
  CaElement(Symbol o, std::vector<Operation> ops);

  [[nodiscard]] Symbol object() const noexcept { return object_; }
  [[nodiscard]] const std::vector<Operation>& ops() const noexcept {
    return ops_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return ops_.size(); }

  [[nodiscard]] bool mentions_thread(ThreadId t) const noexcept;
  [[nodiscard]] bool contains(const Operation& op) const noexcept;

  /// The paper's E.swap(t, v, t', v') abbreviation:
  ///   E.{(t, ex(v) ▷ (true,v')), (t', ex(v') ▷ (true,v))}.
  [[nodiscard]] static CaElement swap(Symbol o, Symbol method, ThreadId t,
                                      std::int64_t v, ThreadId t2,
                                      std::int64_t v2);
  /// A singleton element o.{(t, f(arg) ▷ ret)}.
  [[nodiscard]] static CaElement singleton(Symbol o, Operation op);

  friend bool operator==(const CaElement& a, const CaElement& b) noexcept {
    return a.object_ == b.object_ && a.ops_ == b.ops_;
  }
  friend bool operator!=(const CaElement& a, const CaElement& b) noexcept {
    return !(a == b);
  }

  [[nodiscard]] std::size_t hash() const noexcept;

  /// E.g. "E.{(t1, exchange(3) > (true,4)), (t2, exchange(4) > (true,3))}".
  [[nodiscard]] std::string to_string() const;

 private:
  Symbol object_;
  std::vector<Operation> ops_;  // sorted, duplicate-free
};

class CaTrace {
 public:
  CaTrace() = default;
  explicit CaTrace(std::vector<CaElement> elements)
      : elements_(std::move(elements)) {}

  [[nodiscard]] std::size_t size() const noexcept { return elements_.size(); }
  [[nodiscard]] bool empty() const noexcept { return elements_.empty(); }
  [[nodiscard]] const CaElement& operator[](std::size_t i) const {
    return elements_[i];
  }
  [[nodiscard]] const std::vector<CaElement>& elements() const noexcept {
    return elements_;
  }

  void append(CaElement e) { elements_.push_back(std::move(e)); }
  void append(const CaTrace& t) {
    elements_.insert(elements_.end(), t.elements_.begin(), t.elements_.end());
  }

  /// T|t — subsequence of CA-elements mentioning thread t (Def. 4).
  [[nodiscard]] CaTrace project_thread(ThreadId t) const;
  /// T|o — subsequence of CA-elements of object o.
  [[nodiscard]] CaTrace project_object(Symbol o) const;

  /// All operations in all elements, in trace order.
  [[nodiscard]] std::vector<Operation> all_ops() const;

  friend bool operator==(const CaTrace& a, const CaTrace& b) noexcept {
    return a.elements_ == b.elements_;
  }
  friend bool operator!=(const CaTrace& a, const CaTrace& b) noexcept {
    return !(a == b);
  }

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<CaElement> elements_;
};

}  // namespace cal

template <>
struct std::hash<cal::CaElement> {
  std::size_t operator()(const cal::CaElement& e) const noexcept {
    return e.hash();
  }
};
