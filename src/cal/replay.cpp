#include "cal/replay.hpp"

namespace cal {

namespace {

bool replay_ca_from(const CaTrace& trace, const CaSpec& spec,
                    const SpecState& state, std::size_t k,
                    ReplayResult& result) {
  if (k == trace.size()) {
    result.ok = true;
    result.final_state = state;
    return true;
  }
  const CaElement& elem = trace[k];
  bool any_step = false;
  for (const CaStepResult& sr : spec.step(state, elem.object(), elem.ops())) {
    if (sr.element != elem) continue;  // spec filled different returns
    any_step = true;
    if (replay_ca_from(trace, spec, sr.next, k + 1, result)) return true;
  }
  if (!any_step && result.failed_at <= k) {
    result.failed_at = k;
    result.reason = "element not admissible: " + elem.to_string();
  }
  return false;
}

}  // namespace

ReplayResult replay_ca(const CaTrace& trace, const CaSpec& spec) {
  ReplayResult result;
  replay_ca_from(trace, spec, spec.initial(), 0, result);
  return result;
}

ReplayResult replay_sequential(const CaTrace& trace,
                               const SequentialSpec& spec) {
  ReplayResult result;
  SpecState state = spec.initial();
  for (std::size_t k = 0; k < trace.size(); ++k) {
    const CaElement& elem = trace[k];
    if (elem.size() != 1) {
      result.failed_at = k;
      result.reason = "non-singleton element in a sequential trace";
      return result;
    }
    const Operation& op = elem.ops().front();
    if (op.is_pending()) {
      result.failed_at = k;
      result.reason = "pending operation in a sequential trace";
      return result;
    }
    bool stepped = false;
    for (SeqStepResult& sr :
         spec.step(state, op.tid, op.object, op.method, op.arg, op.ret)) {
      if (sr.ret == *op.ret) {
        state = std::move(sr.next);
        stepped = true;
        break;
      }
    }
    if (!stepped) {
      result.failed_at = k;
      result.reason = "operation not admissible: " + op.to_string();
      return result;
    }
  }
  result.ok = true;
  result.final_state = std::move(state);
  return result;
}

}  // namespace cal
