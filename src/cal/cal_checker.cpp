#include "cal/cal_checker.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "cal/fingerprint.hpp"
#include "cal/history_index.hpp"
#include "cal/parallel/sharded_set.hpp"
#include "cal/parallel/task_pool.hpp"
#include "cal/spec.hpp"
#include "cal/step_cache.hpp"

namespace cal {

std::vector<CaStepResult> SeqAsCaSpec::step(
    const SpecState& state, Symbol object,
    const std::vector<Operation>& ops) const {
  if (ops.size() != 1) return {};
  const Operation& op = ops.front();
  std::vector<CaStepResult> out;
  for (SeqStepResult& sr :
       seq_->step(state, op.tid, object, op.method, op.arg, op.ret)) {
    Operation completed = op;
    completed.ret = sr.ret;
    out.push_back(CaStepResult{std::move(sr.next),
                               CaElement::singleton(object, completed)});
  }
  return out;
}

namespace {

using Mask = StateMask;

struct KeyHash {
  std::size_t operator()(const std::vector<std::int64_t>& k) const noexcept {
    return hash_state(k);
  }
};

/// Serializes a search node (spec state + fired mask) into `out` for the
/// visited set. `out` is a reusable scratch buffer — the caller only pays
/// an allocation when the node is actually new.
void encode_node(const SpecState& state, const Mask& mask,
                 std::vector<std::int64_t>& out) {
  out.clear();
  out.reserve(state.size() + mask.size() + 1);
  out.push_back(static_cast<std::int64_t>(state.size()));
  out.insert(out.end(), state.begin(), state.end());
  for (std::uint64_t w : mask) {
    out.push_back(static_cast<std::int64_t>(w));
  }
}

/// Memo key for spec_.step(state, object, element): the chosen operations
/// are identified by their indices in the search's fixed array, so the key
/// pins the query exactly without serializing Values (cal/step_cache.hpp).
void encode_step_key(const SpecState& state, Symbol object,
                     const std::vector<std::size_t>& chosen, StepKey& out) {
  out.clear();
  out.reserve(2 + chosen.size() + state.size());
  out.push_back(static_cast<std::int64_t>(object.id()));
  out.push_back(static_cast<std::int64_t>(chosen.size()));
  for (std::size_t i : chosen) {
    out.push_back(static_cast<std::int64_t>(i));
  }
  out.insert(out.end(), state.begin(), state.end());
}

class Search {
 public:
  Search(const std::vector<OpRecord>& ops, const CaSpec& spec,
         const CalCheckOptions& options)
      : ops_(ops), spec_(spec), options_(options), index_(ops) {}

  CalCheckResult run() {
    CalCheckResult result;
    Mask mask((ops_.size() + 63) / 64, 0);
    SpecState state = spec_.initial();
    witness_.clear();
    const bool ok = dfs(state, mask, /*fired_completed=*/0);
    result.ok = ok;
    result.exhausted = exhausted_;
    result.visited_states = visited_size();
    result.fired_elements = fired_elements_;
    result.visited_bytes =
        options_.exact_visited ? exact_bytes_ : fp_visited_.bytes();
    result.step_cache_hits = memo_.hits();
    result.step_cache_misses = memo_.misses();
    result.pruned_subsets = pruned_subsets_;
    if (ok) result.witness = CaTrace(witness_);
    return result;
  }

 private:
  [[nodiscard]] std::size_t visited_size() const {
    return options_.exact_visited ? exact_visited_.size()
                                  : fp_visited_.size();
  }

  /// Dedups the node currently encoded in `key_scratch_`; true iff new.
  bool insert_visited() {
    if (options_.exact_visited) {
      if (!exact_visited_.insert(key_scratch_).second) return false;
      exact_bytes_ += par::ShardedStateSet::key_bytes(key_scratch_);
      return true;
    }
    return fp_visited_.insert(fingerprint_key(key_scratch_));
  }

  bool dfs(const SpecState& state, const Mask& mask,
           std::size_t fired_completed) {
    if (fired_completed == index_.completed()) return true;
    if (options_.max_visited != 0 && visited_size() >= options_.max_visited) {
      exhausted_ = true;
      return false;
    }

    encode_node(state, mask, key_scratch_);
    if (!insert_visited()) return false;

    // Collect enabled operations, grouped by object. Pending invocations
    // participate only when completion is allowed.
    std::unordered_map<Symbol, std::vector<std::size_t>> by_object;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (!index_.enabled(i, mask)) continue;
      if (ops_[i].is_pending() && !options_.complete_pending) continue;
      by_object[ops_[i].op.object].push_back(i);
    }

    for (const auto& [object, candidates] : by_object) {
      const std::size_t cap = spec_.max_element_size() == 0
                                  ? candidates.size()
                                  : std::min(spec_.max_element_size(),
                                             candidates.size());
      // Enumerate non-empty subsets of `candidates` of size <= cap, largest
      // first (multi-operation CA-elements are the common witness shape for
      // CA-objects, e.g. exchanger swaps). Partial sets the spec rules out
      // via compatible() are pruned together with all their supersets.
      std::vector<std::size_t> chosen;
      std::vector<Operation> chosen_ops;
      for (std::size_t size = cap; size >= 1; --size) {
        chosen.clear();
        chosen_ops.clear();
        if (try_subsets(state, mask, fired_completed, object, candidates, 0,
                        size, chosen, chosen_ops)) {
          return true;
        }
      }
    }
    return false;
  }

  bool try_subsets(const SpecState& state, const Mask& mask,
                   std::size_t fired_completed, Symbol object,
                   const std::vector<std::size_t>& candidates,
                   std::size_t from, std::size_t remaining,
                   std::vector<std::size_t>& chosen,
                   std::vector<Operation>& chosen_ops) {
    if (remaining == 0) {
      return fire(state, mask, fired_completed, object, chosen, chosen_ops);
    }
    for (std::size_t i = from; i + remaining <= candidates.size(); ++i) {
      chosen.push_back(candidates[i]);
      chosen_ops.push_back(ops_[candidates[i]].op);
      if (!spec_.compatible(object, chosen_ops)) {
        ++pruned_subsets_;
      } else if (try_subsets(state, mask, fired_completed, object, candidates,
                             i + 1, remaining - 1, chosen, chosen_ops)) {
        return true;
      }
      chosen.pop_back();
      chosen_ops.pop_back();
    }
    return false;
  }

  /// spec_.step through the per-search memo; the returned reference stays
  /// valid across the recursive dfs below (node-based map, never erased).
  const std::vector<CaStepResult>& stepped(
      const SpecState& state, Symbol object,
      const std::vector<std::size_t>& chosen,
      const std::vector<Operation>& element_ops) {
    encode_step_key(state, object, chosen, memo_key_);
    if (const auto* cached = memo_.find(memo_key_)) return *cached;
    return memo_.insert(StepKey(memo_key_),
                        spec_.step(state, object, element_ops));
  }

  bool fire(const SpecState& state, const Mask& mask,
            std::size_t fired_completed, Symbol object,
            const std::vector<std::size_t>& chosen,
            const std::vector<Operation>& element_ops) {
    std::size_t newly_completed = 0;
    for (std::size_t i : chosen) {
      if (!ops_[i].is_pending()) ++newly_completed;
    }
    for (const CaStepResult& sr : stepped(state, object, chosen, element_ops)) {
      ++fired_elements_;
      Mask next_mask = mask;
      for (std::size_t i : chosen) mask_set(next_mask, i);
      witness_.push_back(sr.element);
      if (dfs(sr.next, next_mask, fired_completed + newly_completed)) {
        return true;
      }
      witness_.pop_back();
    }
    return false;
  }

  const std::vector<OpRecord>& ops_;
  const CaSpec& spec_;
  const CalCheckOptions& options_;
  HistoryIndex index_;
  FingerprintSet fp_visited_;
  std::unordered_set<std::vector<std::int64_t>, KeyHash> exact_visited_;
  std::size_t exact_bytes_ = 0;
  std::vector<std::int64_t> key_scratch_;
  StepKey memo_key_;
  StepMemo<CaStepResult> memo_;
  std::vector<CaElement> witness_;
  std::size_t fired_elements_ = 0;
  std::size_t pruned_subsets_ = 0;
  bool exhausted_ = false;
};

/// The multi-threaded engine. Explores the same memoized search space as
/// `Search`: nodes above kForkDepth fork each successor into a pool task
/// (carrying its own witness prefix), deeper nodes recurse sequentially.
/// All tasks share the striped-lock visited set — whichever worker inserts
/// a node first owns its subtree; every other path into it prunes, exactly
/// like the sequential memoization. The first published witness cancels
/// the remaining tasks cooperatively, so acceptance short-circuits just
/// like the sequential engine; rejection still requires (shared-table)
/// exhaustion. Verdicts are therefore identical to the sequential engine;
/// only the choice of witness and the diagnostic counters may differ.
class ParallelSearch {
 public:
  ParallelSearch(const std::vector<OpRecord>& ops, const CaSpec& spec,
                 const CalCheckOptions& options, std::size_t threads)
      : ops_(ops),
        spec_(spec),
        options_(options),
        index_(ops),
        pool_(threads) {}

  CalCheckResult run() {
    Mask mask((ops_.size() + 63) / 64, 0);
    pool_.submit([this, state = spec_.initial(), mask]() mutable {
      std::vector<CaElement> prefix;
      dfs(state, mask, /*fired_completed=*/0, /*depth=*/0, prefix);
    });
    pool_.wait_idle();

    CalCheckResult result;
    result.ok = found_.load(std::memory_order_acquire);
    result.exhausted = exhausted_.load(std::memory_order_relaxed);
    result.visited_states = options_.exact_visited ? exact_visited_.size()
                                                   : fp_visited_.size();
    result.fired_elements = fired_elements_.load(std::memory_order_relaxed);
    result.visited_bytes = options_.exact_visited ? exact_visited_.bytes()
                                                  : fp_visited_.bytes();
    result.step_cache_hits = memo_.hits();
    result.step_cache_misses = memo_.misses();
    result.pruned_subsets = pruned_subsets_.load(std::memory_order_relaxed);
    if (result.ok) {
      std::lock_guard<std::mutex> lock(witness_mu_);
      result.witness = CaTrace(witness_);
    }
    return result;
  }

 private:
  /// Nodes at depth < kForkDepth submit their successors as tasks instead
  /// of recursing. Two levels is enough to flood the pool: the fan-out of
  /// a search root is #objects × #subsets × #spec-outcomes.
  static constexpr std::size_t kForkDepth = 2;

  [[nodiscard]] bool cancelled() const {
    return found_.load(std::memory_order_relaxed) ||
           exhausted_.load(std::memory_order_relaxed);
  }

  void publish(const std::vector<CaElement>& prefix) {
    std::lock_guard<std::mutex> lock(witness_mu_);
    if (found_.load(std::memory_order_relaxed)) return;
    witness_ = prefix;
    found_.store(true, std::memory_order_release);
  }

  /// Shared dedup of an encoded node; true iff this worker owns it.
  bool insert_visited(std::vector<std::int64_t>&& key) {
    if (options_.exact_visited) return exact_visited_.insert(std::move(key));
    return fp_visited_.insert(fingerprint_key(key));
  }

  void dfs(const SpecState& state, const Mask& mask,
           std::size_t fired_completed, std::size_t depth,
           std::vector<CaElement>& prefix) {
    if (cancelled()) return;
    if (fired_completed == index_.completed()) {
      publish(prefix);
      return;
    }
    if (options_.max_visited != 0 &&
        visited_count_.load(std::memory_order_relaxed) >=
            options_.max_visited) {
      exhausted_.store(true, std::memory_order_relaxed);
      return;
    }

    std::vector<std::int64_t> key;
    encode_node(state, mask, key);
    if (!insert_visited(std::move(key))) return;
    visited_count_.fetch_add(1, std::memory_order_relaxed);

    std::unordered_map<Symbol, std::vector<std::size_t>> by_object;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (!index_.enabled(i, mask)) continue;
      if (ops_[i].is_pending() && !options_.complete_pending) continue;
      by_object[ops_[i].op.object].push_back(i);
    }

    std::vector<std::size_t> chosen;
    std::vector<Operation> chosen_ops;
    for (const auto& [object, candidates] : by_object) {
      const std::size_t cap = spec_.max_element_size() == 0
                                  ? candidates.size()
                                  : std::min(spec_.max_element_size(),
                                             candidates.size());
      for (std::size_t size = cap; size >= 1; --size) {
        chosen.clear();
        chosen_ops.clear();
        try_subsets(state, mask, fired_completed, depth, prefix, object,
                    candidates, 0, size, chosen, chosen_ops);
        if (cancelled()) return;
      }
    }
  }

  void try_subsets(const SpecState& state, const Mask& mask,
                   std::size_t fired_completed, std::size_t depth,
                   std::vector<CaElement>& prefix, Symbol object,
                   const std::vector<std::size_t>& candidates,
                   std::size_t from, std::size_t remaining,
                   std::vector<std::size_t>& chosen,
                   std::vector<Operation>& chosen_ops) {
    if (remaining == 0) {
      fire(state, mask, fired_completed, depth, prefix, object, chosen,
           chosen_ops);
      return;
    }
    for (std::size_t i = from; i + remaining <= candidates.size(); ++i) {
      if (cancelled()) return;
      chosen.push_back(candidates[i]);
      chosen_ops.push_back(ops_[candidates[i]].op);
      if (!spec_.compatible(object, chosen_ops)) {
        pruned_subsets_.fetch_add(1, std::memory_order_relaxed);
      } else {
        try_subsets(state, mask, fired_completed, depth, prefix, object,
                    candidates, i + 1, remaining - 1, chosen, chosen_ops);
      }
      chosen.pop_back();
      chosen_ops.pop_back();
    }
  }

  /// spec_.step through the shared sharded memo; returned reference is
  /// stable (entries immutable, never erased — cal/step_cache.hpp).
  const std::vector<CaStepResult>& stepped(
      const SpecState& state, Symbol object,
      const std::vector<std::size_t>& chosen,
      const std::vector<Operation>& element_ops) {
    StepKey key;
    encode_step_key(state, object, chosen, key);
    if (const auto* cached = memo_.find(key)) return *cached;
    return memo_.insert(std::move(key),
                        spec_.step(state, object, element_ops));
  }

  void fire(const SpecState& state, const Mask& mask,
            std::size_t fired_completed, std::size_t depth,
            std::vector<CaElement>& prefix, Symbol object,
            const std::vector<std::size_t>& chosen,
            const std::vector<Operation>& element_ops) {
    std::size_t newly_completed = 0;
    for (std::size_t i : chosen) {
      if (!ops_[i].is_pending()) ++newly_completed;
    }
    for (const CaStepResult& sr : stepped(state, object, chosen, element_ops)) {
      if (cancelled()) return;
      fired_elements_.fetch_add(1, std::memory_order_relaxed);
      Mask next_mask = mask;
      for (std::size_t i : chosen) mask_set(next_mask, i);
      if (depth < kForkDepth) {
        // Fork the subtree: the task owns a copy of the witness prefix.
        auto child_prefix = prefix;
        child_prefix.push_back(sr.element);
        pool_.submit([this, next = sr.next, next_mask,
                      fired = fired_completed + newly_completed,
                      depth, p = std::move(child_prefix)]() mutable {
          dfs(next, next_mask, fired, depth + 1, p);
        });
      } else {
        prefix.push_back(sr.element);
        dfs(sr.next, next_mask, fired_completed + newly_completed, depth + 1,
            prefix);
        prefix.pop_back();
      }
    }
  }

  const std::vector<OpRecord>& ops_;
  const CaSpec& spec_;
  const CalCheckOptions& options_;
  HistoryIndex index_;
  par::TaskPool pool_;
  par::ShardedStateSet exact_visited_;
  par::ShardedFingerprintSet fp_visited_;
  ShardedStepMemo<CaStepResult> memo_;
  std::atomic<std::size_t> visited_count_{0};
  std::atomic<std::size_t> fired_elements_{0};
  std::atomic<std::size_t> pruned_subsets_{0};
  std::atomic<bool> found_{false};
  std::atomic<bool> exhausted_{false};
  std::mutex witness_mu_;
  std::vector<CaElement> witness_;
};

}  // namespace

CalCheckResult CalChecker::check(const std::vector<OpRecord>& ops) const {
  const std::size_t threads = par::resolve_threads(options_.threads);
  if (threads > 1) {
    ParallelSearch search(ops, spec_, options_, threads);
    return search.run();
  }
  Search search(ops, spec_, options_);
  return search.run();
}

CalCheckResult CalChecker::check(const History& history) const {
  if (!history.well_formed()) {
    CalCheckResult r;
    r.ok = false;
    return r;
  }
  return check(history.operations());
}

}  // namespace cal
