#include "cal/cal_checker.hpp"

#include <utility>
#include <vector>

#include "cal/engine/cal_policy.hpp"
#include "cal/engine/search_engine.hpp"
#include "cal/parallel/task_pool.hpp"

namespace cal {

std::vector<CaStepResult> SeqAsCaSpec::step(
    const SpecState& state, Symbol object,
    const std::vector<Operation>& ops) const {
  if (ops.size() != 1) return {};
  const Operation& op = ops.front();
  std::vector<CaStepResult> out;
  for (SeqStepResult& sr :
       seq_->step(state, op.tid, object, op.method, op.arg, op.ret)) {
    Operation completed = op;
    completed.ret = sr.ret;
    out.push_back(CaStepResult{std::move(sr.next),
                               CaElement::singleton(object, completed)});
  }
  return out;
}

namespace {

template <bool kShared, typename Driver>
CalCheckResult collect_result(Driver& driver,
                              engine::CalPolicy<kShared>& policy) {
  const engine::SearchStats stats = driver.run();
  CalCheckResult result;
  result.ok = stats.found;
  result.exhausted = stats.exhausted;
  result.visited_states = stats.visited_states;
  result.visited_bytes = stats.visited_bytes;
  result.fired_elements = policy.fired_elements();
  result.pruned_subsets = policy.pruned_subsets();
  result.symmetry_merged = policy.symmetry_merged();
  result.step_cache_hits = policy.step_cache_hits();
  result.step_cache_misses = policy.step_cache_misses();
  if (result.ok) result.witness = CaTrace(driver.witness());
  return result;
}

}  // namespace

CalCheckResult CalChecker::check(const std::vector<OpRecord>& ops) const {
  if (options_.order_check) {
    if (auto oc = spec_.order_check(ops, options_.complete_pending)) {
      CalCheckResult result;
      result.ok = oc->ok;
      result.witness = std::move(oc->witness);
      result.order_checked = true;
      result.order_values = oc->values;
      result.order_zones = oc->zones;
      result.order_bumps = oc->bumps;
      return result;
    }
  }
  engine::SearchOptions sopts;
  sopts.max_visited = options_.max_visited;
  sopts.exact_visited = options_.exact_visited;
  const std::size_t threads = par::resolve_threads(options_.threads);
  if (threads > 1) {
    engine::CalPolicy<true> policy(ops, spec_, options_.complete_pending,
                                   options_.symmetry);
    engine::ParallelSearch<engine::CalPolicy<true>> driver(policy, sopts,
                                                           threads);
    return collect_result(driver, policy);
  }
  engine::CalPolicy<false> policy(ops, spec_, options_.complete_pending,
                                  options_.symmetry);
  engine::SequentialSearch<engine::CalPolicy<false>> driver(policy, sopts);
  return collect_result(driver, policy);
}

CalCheckResult CalChecker::check(const History& history) const {
  if (!history.well_formed()) {
    CalCheckResult r;
    r.ok = false;
    return r;
  }
  return check(history.operations());
}

}  // namespace cal
