#include "cal/cal_checker.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "cal/spec.hpp"

namespace cal {

std::vector<CaStepResult> SeqAsCaSpec::step(
    const SpecState& state, Symbol object,
    const std::vector<Operation>& ops) const {
  if (ops.size() != 1) return {};
  const Operation& op = ops.front();
  std::vector<CaStepResult> out;
  for (SeqStepResult& sr :
       seq_->step(state, op.tid, object, op.method, op.arg, op.ret)) {
    Operation completed = op;
    completed.ret = sr.ret;
    out.push_back(CaStepResult{std::move(sr.next),
                               CaElement::singleton(object, completed)});
  }
  return out;
}

namespace {

using Mask = std::vector<std::uint64_t>;

bool test_bit(const Mask& m, std::size_t i) {
  return (m[i / 64] >> (i % 64)) & 1u;
}
void set_bit(Mask& m, std::size_t i) { m[i / 64] |= (1ull << (i % 64)); }

struct KeyHash {
  std::size_t operator()(const std::vector<std::int64_t>& k) const noexcept {
    return hash_state(k);
  }
};

class Search {
 public:
  Search(const std::vector<OpRecord>& ops, const CaSpec& spec,
         const CalCheckOptions& options)
      : ops_(ops), spec_(spec), options_(options) {
    const std::size_t n = ops_.size();
    preds_.resize(n);
    completed_ = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!ops_[i].is_pending()) ++completed_;
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i && History::precedes(ops_[j], ops_[i])) {
          preds_[i].push_back(j);
        }
      }
    }
  }

  CalCheckResult run() {
    CalCheckResult result;
    Mask mask((ops_.size() + 63) / 64, 0);
    SpecState state = spec_.initial();
    witness_.clear();
    const bool ok = dfs(state, mask, /*fired_completed=*/0);
    result.ok = ok;
    result.exhausted = exhausted_;
    result.visited_states = visited_.size();
    result.fired_elements = fired_elements_;
    if (ok) result.witness = CaTrace(witness_);
    return result;
  }

 private:
  bool enabled(std::size_t i, const Mask& mask) const {
    if (test_bit(mask, i)) return false;
    for (std::size_t j : preds_[i]) {
      if (!test_bit(mask, j)) return false;
    }
    return true;
  }

  bool dfs(const SpecState& state, const Mask& mask,
           std::size_t fired_completed) {
    if (fired_completed == completed_) return true;
    if (options_.max_visited != 0 &&
        visited_.size() >= options_.max_visited) {
      exhausted_ = true;
      return false;
    }

    std::vector<std::int64_t> key;
    key.reserve(state.size() + mask.size() + 1);
    key.push_back(static_cast<std::int64_t>(state.size()));
    key.insert(key.end(), state.begin(), state.end());
    for (std::uint64_t w : mask) {
      key.push_back(static_cast<std::int64_t>(w));
    }
    if (!visited_.insert(std::move(key)).second) return false;

    // Collect enabled operations, grouped by object. Pending invocations
    // participate only when completion is allowed.
    std::unordered_map<Symbol, std::vector<std::size_t>> by_object;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (!enabled(i, mask)) continue;
      if (ops_[i].is_pending() && !options_.complete_pending) continue;
      by_object[ops_[i].op.object].push_back(i);
    }

    for (const auto& [object, candidates] : by_object) {
      const std::size_t cap = spec_.max_element_size() == 0
                                  ? candidates.size()
                                  : std::min(spec_.max_element_size(),
                                             candidates.size());
      // Enumerate non-empty subsets of `candidates` of size <= cap, largest
      // first (multi-operation CA-elements are the common witness shape for
      // CA-objects, e.g. exchanger swaps).
      std::vector<std::size_t> chosen;
      for (std::size_t size = cap; size >= 1; --size) {
        chosen.clear();
        if (try_subsets(state, mask, fired_completed, object, candidates, 0,
                        size, chosen)) {
          return true;
        }
      }
    }
    return false;
  }

  bool try_subsets(const SpecState& state, const Mask& mask,
                   std::size_t fired_completed, Symbol object,
                   const std::vector<std::size_t>& candidates,
                   std::size_t from, std::size_t remaining,
                   std::vector<std::size_t>& chosen) {
    if (remaining == 0) {
      return fire(state, mask, fired_completed, object, chosen);
    }
    for (std::size_t i = from; i + remaining <= candidates.size(); ++i) {
      chosen.push_back(candidates[i]);
      if (try_subsets(state, mask, fired_completed, object, candidates, i + 1,
                      remaining - 1, chosen)) {
        return true;
      }
      chosen.pop_back();
    }
    return false;
  }

  bool fire(const SpecState& state, const Mask& mask,
            std::size_t fired_completed, Symbol object,
            const std::vector<std::size_t>& chosen) {
    std::vector<Operation> element_ops;
    element_ops.reserve(chosen.size());
    std::size_t newly_completed = 0;
    for (std::size_t i : chosen) {
      element_ops.push_back(ops_[i].op);
      if (!ops_[i].is_pending()) ++newly_completed;
    }
    for (CaStepResult& sr : spec_.step(state, object, element_ops)) {
      ++fired_elements_;
      Mask next_mask = mask;
      for (std::size_t i : chosen) set_bit(next_mask, i);
      witness_.push_back(sr.element);
      if (dfs(sr.next, next_mask, fired_completed + newly_completed)) {
        return true;
      }
      witness_.pop_back();
    }
    return false;
  }

  const std::vector<OpRecord>& ops_;
  const CaSpec& spec_;
  const CalCheckOptions& options_;
  std::vector<std::vector<std::size_t>> preds_;
  std::size_t completed_ = 0;
  std::unordered_set<std::vector<std::int64_t>, KeyHash> visited_;
  std::vector<CaElement> witness_;
  std::size_t fired_elements_ = 0;
  bool exhausted_ = false;
};

}  // namespace

CalCheckResult CalChecker::check(const std::vector<OpRecord>& ops) const {
  Search search(ops, spec_, options_);
  return search.run();
}

CalCheckResult CalChecker::check(const History& history) const {
  if (!history.well_formed()) {
    CalCheckResult r;
    r.ok = false;
    return r;
  }
  return check(history.operations());
}

}  // namespace cal
