// Set-linearizability (Neiger, PODC '94) — related work, §6 of the paper.
//
// Neiger's set-linearizability linearizes executions against sequences of
// *sets* of simultaneous operations. The paper notes that CAL is "similar to
// set-linearizability" but that Neiger gave neither a formal definition nor
// a proof technique; in this library's executable formulation the two
// notions coincide on single-object histories, so the set-linearizability
// checker is a documented thin veneer over the CAL checker. It exists as a
// separate entry point because (a) it names the related-work notion users
// will search for, and (b) it hard-disables completion of pending
// invocations, matching the task-solution setting Neiger targeted (all
// processes finish).
#pragma once

#include "cal/cal_checker.hpp"

namespace cal {

struct SetLinResult {
  bool ok = false;
  std::optional<CaTrace> witness;

  explicit operator bool() const noexcept { return ok; }
};

class SetLinChecker {
 public:
  explicit SetLinChecker(const CaSpec& spec) : spec_(spec) {}

  [[nodiscard]] SetLinResult check(const History& history) const {
    CalCheckOptions opts;
    opts.complete_pending = false;
    CalChecker checker(spec_, opts);
    CalCheckResult r = checker.check(history);
    return SetLinResult{r.ok, std::move(r.witness)};
  }

 private:
  const CaSpec& spec_;
};

}  // namespace cal
