#include "cal/specs/write_snapshot_spec.hpp"

#include <algorithm>

namespace cal {

std::vector<IntervalRoundResult> WriteSnapshotIntervalSpec::round(
    const SpecState& state, Symbol object,
    const std::vector<IntervalOpRef>& participants) const {
  static const Symbol kWs{"ws"};
  if (object != object_) return {};

  // Writes of starting operations land first…
  SpecState next = state;
  for (const IntervalOpRef& ref : participants) {
    if (ref.op.method != kWs || ref.op.arg.kind() != Value::Kind::kInt) {
      return {};
    }
    if (ref.starts) next.push_back(ref.op.arg.as_int());
  }
  std::sort(next.begin(), next.end());

  // …then ending operations snapshot the updated memory.
  const Value snapshot = Value::vec(next);
  std::vector<std::optional<Value>> returns(participants.size());
  for (std::size_t i = 0; i < participants.size(); ++i) {
    const IntervalOpRef& ref = participants[i];
    if (!ref.ends) continue;
    if (ref.op.ret && *ref.op.ret != snapshot) return {};
    returns[i] = snapshot;
  }
  return {IntervalRoundResult{std::move(next), std::move(returns)}};
}

}  // namespace cal
