// Synchronous queue CA-specification — the paper's second exchanger client
// (§2: "In [9], we describe another client of the exchanger, a synchronous
// queue [22]").
//
// A synchronous (hand-off) queue pairs each successful put(v) with exactly
// one take() that returns v; neither has an effect alone. As a CA-spec:
//   * Q.{(t, put(v) ▷ true), (t', take() ▷ (true,v))}, t ≠ t' — a hand-off;
//   * Q.{(t, put(v) ▷ false)} — a put that timed out unpaired;
//   * Q.{(t, take() ▷ (false,0))} — a take that timed out unpaired.
//
// Like the exchanger, the spec is stateless, and no useful sequential
// specification exists for the same Fig. 3 prefix-closure reason.
//
// SyncQueueIntervalSpec expresses the same object in the
// interval-linearizability style of Scherer & Scott's dual data structures
// (§6): each operation spans a "request" round and a "follow-up" round, so
// a hand-off is four round-participations rather than one CA-element. Tests
// show both specifications accept the same concrete histories.
#pragma once

#include "cal/interval_lin.hpp"
#include "cal/spec.hpp"

namespace cal {

class SyncQueueSpec final : public CaSpec {
 public:
  explicit SyncQueueSpec(Symbol object) : object_(object) {}

  [[nodiscard]] SpecState initial() const override { return {}; }
  [[nodiscard]] std::size_t max_element_size() const override { return 2; }
  [[nodiscard]] std::vector<CaStepResult> step(
      const SpecState& state, Symbol object,
      const std::vector<Operation>& ops) const override;

  /// Feasibility pre-filter: only value-matched put/take pairs (or lone
  /// timeouts) can form elements, so put/put and take/take subsets — and
  /// value-mismatched hand-offs — are pruned before step().
  [[nodiscard]] bool compatible(
      Symbol object, const std::vector<Operation>& ops) const override;

 private:
  Symbol object_;
};

class SyncQueueIntervalSpec final : public IntervalSpec {
 public:
  explicit SyncQueueIntervalSpec(Symbol object) : object_(object) {}

  /// The unfair (non-FIFO) synchronous queue is stateless: pairing is
  /// decided inside each round, between the operations that close there.
  [[nodiscard]] SpecState initial() const override { return {}; }
  [[nodiscard]] std::size_t max_round_size() const override { return 0; }
  [[nodiscard]] std::vector<IntervalRoundResult> round(
      const SpecState& state, Symbol object,
      const std::vector<IntervalOpRef>& participants) const override;

 private:
  Symbol object_;
};

}  // namespace cal
