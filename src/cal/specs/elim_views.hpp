// The concrete view functions of §5: F_AR and F_ES.
//
//   F_AR(E[i].S) ≜ (AR.S) — an exchange on any of the elimination array's
//   encapsulated exchangers looks like an exchange on the array itself.
//
//   F_ES picks the elimination stack's linearization points:
//     (S.(t, push(n) ▷ true))            ↦ (ES.(t, push(n) ▷ true))
//     (S.(t, pop() ▷ (true,n)))          ↦ (ES.(t, pop() ▷ (true,n)))
//     AR.{(t, ex(n) ▷ (true,∞)),
//         (t', ex(∞) ▷ (true,n))}, n ≠ ∞ ↦ (ES.(t, push(n) ▷ true)) ·
//                                          (ES.(t', pop() ▷ (true,n)))
//     F_ES(S._) ≜ ε,  F_ES(AR._) ≜ ε     (all other S/AR elements erased)
//
// The third clause is the paper's key move: a *single* simultaneous
// exchange is interpreted as an imaginary *sequence* of two abstract
// operations — the push linearized immediately before the pop.
#pragma once

#include <memory>

#include "cal/symbol.hpp"
#include "cal/view.hpp"

namespace cal {

/// F_AR for an elimination array named `ar` over `width` exchangers named
/// "<ar>.E[0]" … "<ar>.E[width-1]" (see objects/ElimArray for the naming).
[[nodiscard]] std::shared_ptr<const ViewFunction> make_f_ar(Symbol ar,
                                                            std::size_t width);
/// As above with explicit subobject names.
[[nodiscard]] std::shared_ptr<const ViewFunction> make_f_ar(
    std::vector<Symbol> exchangers, Symbol ar);

/// F_ES for an elimination stack `es` built from central stack `s` and
/// elimination array `ar`.
[[nodiscard]] std::shared_ptr<const ViewFunction> make_f_es(Symbol es,
                                                            Symbol s,
                                                            Symbol ar);

/// The full composed view 𝔽_ES = F̂_ES ∘ F̂_AR: maps the raw global trace
/// (with E[i] and S elements) to the elimination stack's own trace.
[[nodiscard]] std::shared_ptr<const ComposedView> make_elimination_stack_view(
    Symbol es, Symbol s, Symbol ar, std::size_t width);

/// Conventional subobject name "<ar>.E[<i>]".
[[nodiscard]] Symbol elim_slot_name(Symbol ar, std::size_t i);

}  // namespace cal
