// Sequential FIFO queue specification — control object for the checkers.
//
// The Michael–Scott queue in src/objects is classically linearizable, so its
// histories must pass both LinChecker(QueueSpec) and the CAL checker with
// SeqAsCaSpec(QueueSpec); the test suite uses it to cross-validate the
// checkers on an object the paper treats as "ordinary" (not a CA-object).
//
//   enq(v) ▷ true            — always succeeds
//   deq()  ▷ (true, head)    — nonempty
//   deq()  ▷ (false, 0)      — empty
#pragma once

#include "cal/spec.hpp"

namespace cal {

class QueueSpec final : public SequentialSpec {
 public:
  explicit QueueSpec(Symbol object) : object_(object) {}

  [[nodiscard]] SpecState initial() const override { return {}; }
  [[nodiscard]] std::vector<SeqStepResult> step(
      const SpecState& state, ThreadId tid, Symbol object, Symbol method,
      const Value& arg, const std::optional<Value>& ret) const override;

 private:
  Symbol object_;
};

/// Read/write register specification:
///   write(v) ▷ () ; read() ▷ v_last (0 initially).
class RegisterSpec final : public SequentialSpec {
 public:
  explicit RegisterSpec(Symbol object) : object_(object) {}

  [[nodiscard]] SpecState initial() const override { return {0}; }
  [[nodiscard]] std::vector<SeqStepResult> step(
      const SpecState& state, ThreadId tid, Symbol object, Symbol method,
      const Value& arg, const std::optional<Value>& ret) const override;

 private:
  Symbol object_;
};

}  // namespace cal
