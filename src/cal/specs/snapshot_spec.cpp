#include "cal/specs/snapshot_spec.hpp"

#include <algorithm>

namespace cal {

bool SnapshotSpec::compatible(Symbol object,
                              const std::vector<Operation>& ops) const {
  if (object != object_ || ops.empty()) return false;
  const Value* snap = nullptr;
  for (const Operation& op : ops) {
    if (op.method != method_ || op.arg.kind() != Value::Kind::kInt) {
      return false;
    }
    if (!op.ret) continue;
    if (op.ret->kind() != Value::Kind::kVec) return false;
    if (snap != nullptr && *snap != *op.ret) return false;
    snap = &*op.ret;
  }
  if (snap != nullptr) {
    // The common snapshot contains every member's own write; a superset
    // only adds writes, so a missing one can never be repaired.
    const std::vector<std::int64_t>& seen = snap->as_vec();
    for (const Operation& op : ops) {
      if (!std::binary_search(seen.begin(), seen.end(), op.arg.as_int())) {
        return false;
      }
    }
  }
  return true;
}

std::vector<CaStepResult> SnapshotSpec::step(
    const SpecState& state, Symbol object,
    const std::vector<Operation>& ops) const {
  if (object != object_ || ops.empty()) return {};

  SpecState next = state;
  for (const Operation& op : ops) {
    if (op.method != method_ || op.arg.kind() != Value::Kind::kInt) return {};
    next.push_back(op.arg.as_int());
  }
  std::sort(next.begin(), next.end());
  const Value snapshot = Value::vec(next);

  std::vector<Operation> completed;
  completed.reserve(ops.size());
  for (const Operation& op : ops) {
    if (op.ret && *op.ret != snapshot) return {};
    Operation c = op;
    c.ret = snapshot;
    completed.push_back(std::move(c));
  }
  return {CaStepResult{std::move(next),
                       CaElement(object_, std::move(completed))}};
}

}  // namespace cal
