// Union of disjoint per-object specifications.
//
// The paper's programs use "a static number of concurrent objects" under a
// strict ownership discipline (§2); a whole-program history therefore mixes
// operations of several objects, each governed by its own spec. UnionCaSpec
// composes them: elements are dispatched to the sub-spec registered for
// their object, and the abstract state is the product of the sub-states.
// Because objects are disjoint, the sub-states never interact — the
// executable face of the paper's encapsulation assumption.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "cal/spec.hpp"

namespace cal {

class UnionCaSpec final : public CaSpec {
 public:
  using Entry = std::pair<Symbol, std::shared_ptr<const CaSpec>>;

  explicit UnionCaSpec(std::vector<Entry> specs) : specs_(std::move(specs)) {}

  [[nodiscard]] SpecState initial() const override;
  [[nodiscard]] std::size_t max_element_size() const override;
  [[nodiscard]] std::vector<CaStepResult> step(
      const SpecState& state, Symbol object,
      const std::vector<Operation>& ops) const override;
  /// Dispatches to the owning sub-spec's pre-filter (so e.g. an
  /// elimination-stack union inherits the exchanger's pair pruning);
  /// unregistered objects admit nothing.
  [[nodiscard]] bool compatible(
      Symbol object, const std::vector<Operation>& ops) const override;

 private:
  /// Splits the product state into the i-th sub-state (by length prefix).
  [[nodiscard]] SpecState sub_state(const SpecState& state,
                                    std::size_t index) const;
  [[nodiscard]] SpecState replace_sub_state(const SpecState& state,
                                            std::size_t index,
                                            const SpecState& next) const;

  std::vector<Entry> specs_;
};

}  // namespace cal
