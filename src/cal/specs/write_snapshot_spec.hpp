// Write-snapshot interval specification — the task Castañeda, Rajsbaum &
// Raynal use to show that set-linearizability (and hence single-element
// CAL traces) is not expressive enough, motivating interval-linearizability
// (§6 of the paper).
//
// Each operation ws(v) *writes* v at one point and *snapshots* the written
// values at a possibly later point, so a single operation spans an interval
// of rounds: the write takes effect in its first round, the snapshot is
// taken in its last. The outcome that separates the notions is *mutual
// visibility without equality*: with writes w1 w2 · snap1 · w3 · snap2 the
// returns S1 = {1,2} and S2 = {1,2,3} are legal although ops 1 and 2 see
// each other — impossible for any sequence of operation *sets*, where
// mutually-visible operations share one set and hence one snapshot. The
// tests show this history rejected by the (set-style) SnapshotSpec and
// accepted here.
//
// Abstract state: the sorted set of written values.
#pragma once

#include "cal/interval_lin.hpp"

namespace cal {

class WriteSnapshotIntervalSpec final : public IntervalSpec {
 public:
  explicit WriteSnapshotIntervalSpec(Symbol object) : object_(object) {}

  [[nodiscard]] SpecState initial() const override { return {}; }
  [[nodiscard]] std::size_t max_round_size() const override { return 0; }
  [[nodiscard]] std::vector<IntervalRoundResult> round(
      const SpecState& state, Symbol object,
      const std::vector<IntervalOpRef>& participants) const override;

 private:
  Symbol object_;
};

}  // namespace cal
