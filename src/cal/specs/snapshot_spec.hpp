// Immediate atomic snapshot CA-specification (Borowsky & Gafni) — the task
// Neiger used to motivate set-linearizability (§6 of the paper).
//
// Each operation us(v) simultaneously writes v and returns a snapshot of
// everything written. In an immediate snapshot, a *set* of concurrent
// operations all see each other: a CA-element IS.{(t1, us(v1) ▷ S), …,
// (tk, us(vk) ▷ S)} is admissible iff every member returns the same snapshot
// S = previously-written ∪ {v1,…,vk}. Elements are unbounded — this is the
// spec that exercises the CAL checker's max_element_size() == 0 path.
//
// Abstract state: the sorted multiset of written values.
#pragma once

#include "cal/spec.hpp"

namespace cal {

class SnapshotSpec final : public CaSpec {
 public:
  /// `method` is the update-and-scan operation's name ("us" by default;
  /// write-snapshot comparisons pass "ws" to share histories).
  explicit SnapshotSpec(Symbol object, Symbol method = Symbol("us"))
      : object_(object), method_(method) {}

  [[nodiscard]] SpecState initial() const override { return {}; }
  [[nodiscard]] std::size_t max_element_size() const override { return 0; }
  [[nodiscard]] std::vector<CaStepResult> step(
      const SpecState& state, Symbol object,
      const std::vector<Operation>& ops) const override;

  /// Feasibility pre-filter: all members of an element return one common
  /// snapshot containing their own writes — mismatched concrete returns
  /// prune the (unbounded) subset lattice above them.
  [[nodiscard]] bool compatible(
      Symbol object, const std::vector<Operation>& ops) const override;

 private:
  Symbol object_;
  Symbol method_;
};

}  // namespace cal
