#include "cal/specs/sync_queue_spec.hpp"

#include <algorithm>

namespace cal {

namespace {

const Symbol& put_sym() {
  static const Symbol s{"put"};
  return s;
}
const Symbol& take_sym() {
  static const Symbol s{"take"};
  return s;
}

bool put_admits(const Operation& op, bool paired) {
  if (op.method != put_sym() || op.arg.kind() != Value::Kind::kInt) {
    return false;
  }
  if (!op.ret) return true;
  return op.ret->kind() == Value::Kind::kBool && op.ret->as_bool() == paired;
}

bool take_admits(const Operation& op, const std::optional<std::int64_t>& got) {
  if (op.method != take_sym() || !op.arg.is_unit()) return false;
  if (!op.ret) return true;
  if (op.ret->kind() != Value::Kind::kPair) return false;
  if (got) return op.ret->pair_ok() && op.ret->pair_int() == *got;
  return !op.ret->pair_ok() && op.ret->pair_int() == 0;
}

}  // namespace

bool SyncQueueSpec::compatible(Symbol object,
                               const std::vector<Operation>& ops) const {
  if (object != object_ || ops.size() > 2 || ops.empty()) return false;
  for (const Operation& op : ops) {
    if (op.method == put_sym()) {
      if (!put_admits(op, false) && !put_admits(op, true)) return false;
    } else if (op.method == take_sym()) {
      if (!take_admits(op, std::nullopt) &&
          !(op.ret && op.ret->kind() == Value::Kind::kPair &&
            op.ret->pair_ok())) {
        return false;
      }
    } else {
      return false;
    }
  }
  if (ops.size() == 2) {
    const Operation* put = nullptr;
    const Operation* take = nullptr;
    for (const Operation& op : ops) {
      if (op.method == put_sym()) put = &op;
      if (op.method == take_sym()) take = &op;
    }
    return put != nullptr && take != nullptr && put->tid != take->tid &&
           put_admits(*put, /*paired=*/true) &&
           take_admits(*take, put->arg.as_int());
  }
  return true;
}

std::vector<CaStepResult> SyncQueueSpec::step(
    const SpecState& state, Symbol object,
    const std::vector<Operation>& ops) const {
  if (object != object_) return {};
  std::vector<CaStepResult> out;
  if (ops.size() == 1) {
    const Operation& op = ops.front();
    if (put_admits(op, /*paired=*/false)) {
      Operation c = op;
      c.ret = Value::boolean(false);
      out.push_back(CaStepResult{state, CaElement::singleton(object_, c)});
    }
    if (take_admits(op, std::nullopt)) {
      Operation c = op;
      c.ret = Value::pair(false, 0);
      out.push_back(CaStepResult{state, CaElement::singleton(object_, c)});
    }
  } else if (ops.size() == 2) {
    // Exactly one put and one take, by different threads.
    const Operation* put = nullptr;
    const Operation* take = nullptr;
    for (const Operation& op : ops) {
      if (op.method == put_sym()) put = &op;
      if (op.method == take_sym()) take = &op;
    }
    if (put == nullptr || take == nullptr || put->tid == take->tid) return {};
    if (!put_admits(*put, /*paired=*/true) ||
        !take_admits(*take, put->arg.as_int())) {
      return {};
    }
    Operation cp = *put;
    Operation ct = *take;
    cp.ret = Value::boolean(true);
    ct.ret = Value::pair(true, put->arg.as_int());
    out.push_back(CaStepResult{
        state, CaElement(object_, {std::move(cp), std::move(ct)})});
  }
  return out;
}

namespace {

/// Enumerates all consistent completions of one round's closings:
/// pairings between closing puts and closing takes, plus unpaired failures.
void enumerate_closings(
    const std::vector<std::size_t>& closing_puts,
    const std::vector<std::size_t>& closing_takes,
    const std::vector<IntervalOpRef>& participants, std::size_t pi,
    std::vector<bool>& take_used,
    std::vector<std::optional<Value>>& returns,
    std::vector<IntervalRoundResult>& out) {
  if (pi == closing_puts.size()) {
    // Remaining closing takes fail (or match their concrete failure ret).
    std::vector<std::optional<Value>> final_returns = returns;
    for (std::size_t k = 0; k < closing_takes.size(); ++k) {
      if (take_used[k]) continue;
      const Operation& op = participants[closing_takes[k]].op;
      if (!take_admits(op, std::nullopt)) return;
      final_returns[closing_takes[k]] = Value::pair(false, 0);
    }
    out.push_back(IntervalRoundResult{{}, std::move(final_returns)});
    return;
  }

  const std::size_t p = closing_puts[pi];
  const Operation& put = participants[p].op;
  // Option 1: this put fails.
  if (put_admits(put, /*paired=*/false)) {
    returns[p] = Value::boolean(false);
    enumerate_closings(closing_puts, closing_takes, participants, pi + 1,
                       take_used, returns, out);
    returns[p].reset();
  }
  // Option 2: pair with some unused closing take of another thread.
  if (put_admits(put, /*paired=*/true)) {
    for (std::size_t k = 0; k < closing_takes.size(); ++k) {
      if (take_used[k]) continue;
      const std::size_t tix = closing_takes[k];
      const Operation& take = participants[tix].op;
      if (take.tid == put.tid) continue;
      if (!take_admits(take, put.arg.as_int())) continue;
      take_used[k] = true;
      returns[p] = Value::boolean(true);
      returns[tix] = Value::pair(true, put.arg.as_int());
      enumerate_closings(closing_puts, closing_takes, participants, pi + 1,
                         take_used, returns, out);
      returns[tix].reset();
      returns[p].reset();
      take_used[k] = false;
    }
  }
}

}  // namespace

std::vector<IntervalRoundResult> SyncQueueIntervalSpec::round(
    const SpecState& /*state*/, Symbol object,
    const std::vector<IntervalOpRef>& participants) const {
  if (object != object_) return {};
  std::vector<std::size_t> closing_puts;
  std::vector<std::size_t> closing_takes;
  for (std::size_t i = 0; i < participants.size(); ++i) {
    const IntervalOpRef& ref = participants[i];
    if (ref.op.method != put_sym() && ref.op.method != take_sym()) return {};
    if (!ref.ends) continue;
    if (ref.op.method == put_sym()) {
      closing_puts.push_back(i);
    } else {
      closing_takes.push_back(i);
    }
  }
  std::vector<IntervalRoundResult> out;
  std::vector<bool> take_used(closing_takes.size(), false);
  std::vector<std::optional<Value>> returns(participants.size());
  enumerate_closings(closing_puts, closing_takes, participants, 0, take_used,
                     returns, out);
  return out;
}

}  // namespace cal
