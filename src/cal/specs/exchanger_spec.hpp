// The exchanger CA-specification (§4 of the paper).
//
// The trace-set of an exchanger E is the set of sequences S1 S2 … where each
// CA-element Si is either
//   * E.swap(t, v, t', v') ≜ E.{(t, ex(v) ▷ (true,v')), (t', ex(v') ▷ (true,v))}
//     with t ≠ t' — two overlapping operations that succeed simultaneously, or
//   * E.{(t, ex(v) ▷ (false,v))} — a thread that failed to find a partner.
//
// The spec is stateless: admissibility of an element depends only on its own
// shape. That statelessness is exactly why no *sequential* specification
// exists (§3, Fig. 3): a sequential spec would have to carry the first
// ex(v) ▷ (true,v') as a prefix-closed singleton, inventing a partner-less
// successful exchange.
#pragma once

#include "cal/spec.hpp"

namespace cal {

class ExchangerSpec final : public CaSpec {
 public:
  /// Governs `object`, whose exchange method is named `method`.
  /// The same shape specifies rendezvous objects under another method name.
  explicit ExchangerSpec(Symbol object, Symbol method = Symbol("exchange"))
      : object_(object), method_(method) {}

  [[nodiscard]] SpecState initial() const override { return {}; }
  [[nodiscard]] std::size_t max_element_size() const override { return 2; }

  [[nodiscard]] std::vector<CaStepResult> step(
      const SpecState& state, Symbol object,
      const std::vector<Operation>& ops) const override;

  /// Feasibility pre-filter: elements are value-matched pairs or failures,
  /// so the checker's pair enumeration drops from all 2-subsets to the
  /// value-compatible ones without calling step().
  [[nodiscard]] bool compatible(
      Symbol object, const std::vector<Operation>& ops) const override;

  /// All completed *failed* exchanges share one class: a failure's only
  /// admissible consumption is its own singleton element (its ret is
  /// (false, v), never the (true, ·) a swap half needs), the spec is
  /// stateless, and the value it echoes is its own offer — so even
  /// failures with different offers have identical admissible futures.
  [[nodiscard]] std::uint64_t symmetry_class(
      Symbol object, const Operation& op) const override;

  [[nodiscard]] Symbol object() const noexcept { return object_; }
  [[nodiscard]] Symbol method() const noexcept { return method_; }

 private:
  Symbol object_;
  Symbol method_;
};

}  // namespace cal
