#include "cal/specs/union_spec.hpp"

#include <algorithm>

namespace cal {

SpecState UnionCaSpec::initial() const {
  SpecState out;
  for (const Entry& e : specs_) {
    const SpecState sub = e.second->initial();
    out.push_back(static_cast<std::int64_t>(sub.size()));
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

std::size_t UnionCaSpec::max_element_size() const {
  std::size_t max = 1;
  for (const Entry& e : specs_) {
    const std::size_t m = e.second->max_element_size();
    if (m == 0) return 0;  // one unbounded sub-spec makes the union unbounded
    max = std::max(max, m);
  }
  return max;
}

SpecState UnionCaSpec::sub_state(const SpecState& state,
                                 std::size_t index) const {
  std::size_t pos = 0;
  for (std::size_t i = 0; i < index; ++i) {
    pos += 1 + static_cast<std::size_t>(state[pos]);
  }
  const auto len = static_cast<std::size_t>(state[pos]);
  return SpecState(state.begin() + static_cast<std::ptrdiff_t>(pos + 1),
                   state.begin() + static_cast<std::ptrdiff_t>(pos + 1 + len));
}

SpecState UnionCaSpec::replace_sub_state(const SpecState& state,
                                         std::size_t index,
                                         const SpecState& next) const {
  SpecState out;
  std::size_t pos = 0;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const auto len = static_cast<std::size_t>(state[pos]);
    if (i == index) {
      out.push_back(static_cast<std::int64_t>(next.size()));
      out.insert(out.end(), next.begin(), next.end());
    } else {
      out.insert(out.end(),
                 state.begin() + static_cast<std::ptrdiff_t>(pos),
                 state.begin() + static_cast<std::ptrdiff_t>(pos + 1 + len));
    }
    pos += 1 + len;
  }
  return out;
}

bool UnionCaSpec::compatible(Symbol object,
                             const std::vector<Operation>& ops) const {
  for (const Entry& e : specs_) {
    if (e.first == object) return e.second->compatible(object, ops);
  }
  return false;  // no registered spec for this object
}

std::vector<CaStepResult> UnionCaSpec::step(
    const SpecState& state, Symbol object,
    const std::vector<Operation>& ops) const {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].first != object) continue;
    std::vector<CaStepResult> out;
    for (CaStepResult& sr :
         specs_[i].second->step(sub_state(state, i), object, ops)) {
      out.push_back(CaStepResult{replace_sub_state(state, i, sr.next),
                                 std::move(sr.element)});
    }
    return out;
  }
  return {};  // no registered spec for this object
}

}  // namespace cal
