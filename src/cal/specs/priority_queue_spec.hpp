// Sequential priority-queue specification and its order-checked CA view.
//
// The bucket priority queue in src/objects is classically linearizable, so
// its histories must pass both LinChecker(PriorityQueueSpec) and the CAL
// checker. The inserted value doubles as the priority, smaller = higher:
//
//   insert(v)  ▷ true            — always succeeds
//   deleteMin  ▷ (true, min)     — nonempty (min = smallest stored value)
//   deleteMin  ▷ (false, 0)      — empty
//
// PriorityQueueCaSpec layers the checker capabilities on top of the
// SeqAsCaSpec view: symmetry classes (identical completed operations are
// interchangeable in a tid-agnostic sequential spec) and — the reason this
// spec exists — the polynomial order_check fast path implemented in
// cal/engine/order_checker.hpp, which decides membership without the
// engine's state search whenever all inserted values are distinct.
#pragma once

#include <memory>

#include "cal/spec.hpp"

namespace cal {

class PriorityQueueSpec final : public SequentialSpec {
 public:
  explicit PriorityQueueSpec(Symbol object) : object_(object) {}

  [[nodiscard]] SpecState initial() const override { return {}; }
  [[nodiscard]] std::vector<SeqStepResult> step(
      const SpecState& state, ThreadId tid, Symbol object, Symbol method,
      const Value& arg, const std::optional<Value>& ret) const override;

 private:
  Symbol object_;  // state is the stored multiset, kept ascending
};

/// SeqAsCaSpec(PriorityQueueSpec) plus the order_check fast path and
/// symmetry classes. CalChecker consults order_check first and only falls
/// back to the engine when it declines (duplicate inserted values, pending
/// deleteMin under complete_pending).
class PriorityQueueCaSpec final : public SeqAsCaSpec {
 public:
  explicit PriorityQueueCaSpec(Symbol object)
      : SeqAsCaSpec(std::make_shared<PriorityQueueSpec>(object)),
        object_(object) {}

  /// The sequential spec never inspects tids, so completed operations with
  /// equal method/argument/return are fully interchangeable.
  [[nodiscard]] std::uint64_t symmetry_class(
      Symbol object, const Operation& op) const override;

  [[nodiscard]] std::optional<OrderCheckOutcome> order_check(
      const std::vector<OpRecord>& ops,
      bool complete_pending) const override;

 private:
  Symbol object_;
};

}  // namespace cal
