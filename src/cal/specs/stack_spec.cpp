#include "cal/specs/stack_spec.hpp"

namespace cal {

namespace {

const Symbol& push_sym() {
  static const Symbol s{"push"};
  return s;
}
const Symbol& pop_sym() {
  static const Symbol s{"pop"};
  return s;
}

/// Emits `result` unless a concrete expected return contradicts it.
void emit(std::vector<SeqStepResult>& out, const std::optional<Value>& want,
          SpecState next, Value ret) {
  if (want && *want != ret) return;
  out.push_back(SeqStepResult{std::move(next), std::move(ret)});
}

}  // namespace

std::vector<SeqStepResult> CentralStackSpec::step(
    const SpecState& state, ThreadId /*tid*/, Symbol object, Symbol method,
    const Value& arg, const std::optional<Value>& ret) const {
  if (object != object_) return {};
  std::vector<SeqStepResult> out;
  if (method == push_sym()) {
    if (arg.kind() != Value::Kind::kInt) return {};
    SpecState pushed = state;
    pushed.push_back(arg.as_int());
    emit(out, ret, std::move(pushed), Value::boolean(true));
    emit(out, ret, state, Value::boolean(false));  // lost CAS, no effect
  } else if (method == pop_sym()) {
    if (!state.empty()) {
      SpecState popped = state;
      popped.pop_back();
      emit(out, ret, std::move(popped), Value::pair(true, state.back()));
    }
    emit(out, ret, state, Value::pair(false, 0));  // empty or lost CAS
  }
  return out;
}

std::vector<SeqStepResult> StackSpec::step(
    const SpecState& state, ThreadId /*tid*/, Symbol object, Symbol method,
    const Value& arg, const std::optional<Value>& ret) const {
  if (object != object_) return {};
  std::vector<SeqStepResult> out;
  if (method == push_sym()) {
    if (arg.kind() != Value::Kind::kInt) return {};
    SpecState pushed = state;
    pushed.push_back(arg.as_int());
    emit(out, ret, std::move(pushed), Value::boolean(true));
  } else if (method == pop_sym()) {
    if (state.empty()) return {};  // pop blocks on empty (Fig. 2 loops)
    SpecState popped = state;
    popped.pop_back();
    emit(out, ret, std::move(popped), Value::pair(true, state.back()));
  }
  return out;
}

}  // namespace cal
