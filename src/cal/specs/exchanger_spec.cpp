#include "cal/specs/exchanger_spec.hpp"

namespace cal {

namespace {

/// True iff `op` could be (or is) the failed exchange (t, ex(v) ▷ (false,v)).
bool admits_failure(const Operation& op) {
  if (op.arg.kind() != Value::Kind::kInt) return false;
  if (!op.ret) return true;  // pending: may be completed as a failure
  return op.ret->kind() == Value::Kind::kPair && !op.ret->pair_ok() &&
         op.ret->pair_int() == op.arg.as_int();
}

/// True iff `op` could be one half of a successful swap receiving `got`.
bool admits_success(const Operation& op, std::int64_t got) {
  if (op.arg.kind() != Value::Kind::kInt) return false;
  if (!op.ret) return true;
  return op.ret->kind() == Value::Kind::kPair && op.ret->pair_ok() &&
         op.ret->pair_int() == got;
}

}  // namespace

bool ExchangerSpec::compatible(Symbol object,
                               const std::vector<Operation>& ops) const {
  if (object != object_ || ops.size() > 2 || ops.empty()) return false;
  for (const Operation& op : ops) {
    if (op.method != method_ || op.arg.kind() != Value::Kind::kInt) {
      return false;
    }
    if (op.ret) {
      if (op.ret->kind() != Value::Kind::kPair) return false;
      // A concrete failure must echo the thread's own offer; no element —
      // singleton or pair — admits any other failed shape.
      if (!op.ret->pair_ok() && op.ret->pair_int() != op.arg.as_int()) {
        return false;
      }
    }
  }
  if (ops.size() == 2) {
    const Operation& a = ops[0];
    const Operation& b = ops[1];
    return a.tid != b.tid && admits_success(a, b.arg.as_int()) &&
           admits_success(b, a.arg.as_int());
  }
  // A lone operation may still pair with a later candidate, so only the
  // per-operation shape checks above apply.
  return true;
}

std::uint64_t ExchangerSpec::symmetry_class(Symbol object,
                                            const Operation& op) const {
  if (object != object_ || op.method != method_) return 0;
  if (!op.ret || op.arg.kind() != Value::Kind::kInt) return 0;
  const bool failed = op.ret->kind() == Value::Kind::kPair &&
                      !op.ret->pair_ok() &&
                      op.ret->pair_int() == op.arg.as_int();
  return failed ? 1 : 0;
}

std::vector<CaStepResult> ExchangerSpec::step(
    const SpecState& state, Symbol object,
    const std::vector<Operation>& ops) const {
  if (object != object_) return {};
  for (const Operation& op : ops) {
    if (op.method != method_) return {};
  }

  std::vector<CaStepResult> out;
  if (ops.size() == 1) {
    const Operation& op = ops.front();
    if (!admits_failure(op)) return {};
    Operation completed = op;
    completed.ret = Value::pair(false, op.arg.as_int());
    out.push_back(
        CaStepResult{state, CaElement::singleton(object_, completed)});
  } else if (ops.size() == 2) {
    const Operation& a = ops[0];
    const Operation& b = ops[1];
    if (a.tid == b.tid) return {};
    if (!admits_success(a, b.arg.as_int()) ||
        !admits_success(b, a.arg.as_int())) {
      return {};
    }
    Operation ca = a;
    Operation cb = b;
    ca.ret = Value::pair(true, b.arg.as_int());
    cb.ret = Value::pair(true, a.arg.as_int());
    out.push_back(CaStepResult{
        state, CaElement(object_, {std::move(ca), std::move(cb)})});
  }
  return out;
}

}  // namespace cal
