#include "cal/specs/elim_views.hpp"

#include <string>

namespace cal {

Symbol elim_slot_name(Symbol ar, std::size_t i) {
  return Symbol(ar.str() + ".E[" + std::to_string(i) + "]");
}

std::shared_ptr<const ViewFunction> make_f_ar(std::vector<Symbol> exchangers,
                                              Symbol ar) {
  return std::make_shared<RenameObjectView>(std::move(exchangers), ar);
}

std::shared_ptr<const ViewFunction> make_f_ar(Symbol ar, std::size_t width) {
  std::vector<Symbol> sources;
  sources.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    sources.push_back(elim_slot_name(ar, i));
  }
  return make_f_ar(std::move(sources), ar);
}

std::shared_ptr<const ViewFunction> make_f_es(Symbol es, Symbol s, Symbol ar) {
  static const Symbol kPush{"push"};
  static const Symbol kPop{"pop"};
  static const Symbol kExchange{"exchange"};

  return std::make_shared<LambdaView>(
      [es, s, ar, kPush = kPush, kPop = kPop, kExchange = kExchange](
          const CaElement& e) -> std::optional<CaTrace> {
        if (e.object() == s) {
          // Successful central-stack push/pop is an elimination-stack
          // linearization point; everything else on S is erased.
          CaTrace out;
          if (e.size() == 1) {
            const Operation& op = e.ops().front();
            if (op.method == kPush && op.ret &&
                op.ret->kind() == Value::Kind::kBool && op.ret->as_bool()) {
              Operation lifted = op;
              lifted.object = es;
              out.append(CaElement::singleton(es, std::move(lifted)));
            } else if (op.method == kPop && op.ret &&
                       op.ret->kind() == Value::Kind::kPair &&
                       op.ret->pair_ok()) {
              Operation lifted = op;
              lifted.object = es;
              out.append(CaElement::singleton(es, std::move(lifted)));
            }
          }
          return out;  // possibly ε
        }
        if (e.object() == ar) {
          // A swap of (n, ∞) with n ≠ ∞ is an elimination: the push
          // linearizes immediately before the pop. Everything else on AR
          // (failed exchanges, push/push or pop/pop collisions) is erased.
          CaTrace out;
          if (e.size() == 2) {
            const Operation* pusher = nullptr;
            const Operation* popper = nullptr;
            for (const Operation& op : e.ops()) {
              if (op.method != kExchange || !op.ret ||
                  op.ret->kind() != Value::Kind::kPair || !op.ret->pair_ok()) {
                return CaTrace{};
              }
              if (op.arg.kind() != Value::Kind::kInt) return CaTrace{};
              if (op.arg.as_int() == kInfinity) {
                popper = &op;
              } else {
                pusher = &op;
              }
            }
            if (pusher != nullptr && popper != nullptr &&
                popper->ret->pair_int() == pusher->arg.as_int()) {
              Operation push_op = Operation::make(
                  pusher->tid, es, kPush,
                  Value::integer(pusher->arg.as_int()), Value::boolean(true));
              Operation pop_op = Operation::make(
                  popper->tid, es, kPop, Value::unit(),
                  Value::pair(true, pusher->arg.as_int()));
              out.append(CaElement::singleton(es, std::move(push_op)));
              out.append(CaElement::singleton(es, std::move(pop_op)));
            }
          }
          return out;  // possibly ε
        }
        return std::nullopt;  // not a subobject of ES: leave unchanged
      });
}

std::shared_ptr<const ComposedView> make_elimination_stack_view(
    Symbol es, Symbol s, Symbol ar, std::size_t width) {
  return std::make_shared<ComposedView>(
      make_f_es(es, s, ar),
      std::vector<std::shared_ptr<const ViewFunction>>{make_f_ar(ar, width)});
}

}  // namespace cal
