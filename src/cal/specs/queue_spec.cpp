#include "cal/specs/queue_spec.hpp"

#include <algorithm>

namespace cal {

namespace {

void emit(std::vector<SeqStepResult>& out, const std::optional<Value>& want,
          SpecState next, Value ret) {
  if (want && *want != ret) return;
  out.push_back(SeqStepResult{std::move(next), std::move(ret)});
}

}  // namespace

std::vector<SeqStepResult> QueueSpec::step(
    const SpecState& state, ThreadId /*tid*/, Symbol object, Symbol method,
    const Value& arg, const std::optional<Value>& ret) const {
  static const Symbol kEnq{"enq"};
  static const Symbol kDeq{"deq"};
  if (object != object_) return {};
  std::vector<SeqStepResult> out;
  if (method == kEnq) {
    if (arg.kind() != Value::Kind::kInt) return {};
    SpecState next = state;
    next.push_back(arg.as_int());
    emit(out, ret, std::move(next), Value::boolean(true));
  } else if (method == kDeq) {
    if (state.empty()) {
      emit(out, ret, state, Value::pair(false, 0));
    } else {
      SpecState next(state.begin() + 1, state.end());
      emit(out, ret, std::move(next), Value::pair(true, state.front()));
    }
  }
  return out;
}

std::vector<SeqStepResult> RegisterSpec::step(
    const SpecState& state, ThreadId /*tid*/, Symbol object, Symbol method,
    const Value& arg, const std::optional<Value>& ret) const {
  static const Symbol kRead{"read"};
  static const Symbol kWrite{"write"};
  if (object != object_) return {};
  std::vector<SeqStepResult> out;
  if (method == kWrite) {
    if (arg.kind() != Value::Kind::kInt) return {};
    emit(out, ret, SpecState{arg.as_int()}, Value::unit());
  } else if (method == kRead) {
    emit(out, ret, state, Value::integer(state.front()));
  }
  return out;
}

}  // namespace cal
