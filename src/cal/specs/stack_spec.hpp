// Sequential stack specifications (§4, "Stack specification").
//
// Two variants, matching the two stacks in Fig. 2:
//
//   * CentralStackSpec — the single-attempt CAS stack `S`: push(v) may
//     return true (pushing v) or spuriously false (no effect, modelling a
//     lost CAS under contention); pop() may return (true, top) (popping),
//     or (false, 0) (empty stack or lost CAS, no effect). A history is
//     WFS-well-defined exactly when its successful operations replay.
//
//   * StackSpec — the elimination stack `ES` as its clients see it:
//     push(v) always returns true; pop() returns (true, v) for the value on
//     top and is only admissible on a non-empty stack (the Fig. 2 pop loops
//     rather than report empty).
//
// Abstract state: the stack contents, top last.
#pragma once

#include "cal/spec.hpp"

namespace cal {

class CentralStackSpec final : public SequentialSpec {
 public:
  explicit CentralStackSpec(Symbol object) : object_(object) {}

  [[nodiscard]] SpecState initial() const override { return {}; }
  [[nodiscard]] std::vector<SeqStepResult> step(
      const SpecState& state, ThreadId tid, Symbol object, Symbol method,
      const Value& arg, const std::optional<Value>& ret) const override;

 private:
  Symbol object_;
};

class StackSpec final : public SequentialSpec {
 public:
  explicit StackSpec(Symbol object) : object_(object) {}

  [[nodiscard]] SpecState initial() const override { return {}; }
  [[nodiscard]] std::vector<SeqStepResult> step(
      const SpecState& state, ThreadId tid, Symbol object, Symbol method,
      const Value& arg, const std::optional<Value>& ret) const override;

 private:
  Symbol object_;
};

}  // namespace cal
