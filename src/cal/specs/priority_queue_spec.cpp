#include "cal/specs/priority_queue_spec.hpp"

#include <algorithm>

#include "cal/engine/order_checker.hpp"

namespace cal {

namespace {

const Symbol& insert_symbol() {
  static const Symbol s{"insert"};
  return s;
}

const Symbol& delete_min_symbol() {
  static const Symbol s{"deleteMin"};
  return s;
}

void emit(std::vector<SeqStepResult>& out, const std::optional<Value>& want,
          SpecState next, Value ret) {
  if (want && *want != ret) return;
  out.push_back(SeqStepResult{std::move(next), std::move(ret)});
}

}  // namespace

std::vector<SeqStepResult> PriorityQueueSpec::step(
    const SpecState& state, ThreadId /*tid*/, Symbol object, Symbol method,
    const Value& arg, const std::optional<Value>& ret) const {
  if (object != object_) return {};
  std::vector<SeqStepResult> out;
  if (method == insert_symbol()) {
    if (arg.kind() != Value::Kind::kInt) return {};
    SpecState next = state;
    next.insert(std::upper_bound(next.begin(), next.end(), arg.as_int()),
                arg.as_int());
    emit(out, ret, std::move(next), Value::boolean(true));
  } else if (method == delete_min_symbol()) {
    if (state.empty()) {
      emit(out, ret, state, Value::pair(false, 0));
    } else {
      SpecState next(state.begin() + 1, state.end());
      emit(out, ret, std::move(next), Value::pair(true, state.front()));
    }
  }
  return out;
}

std::uint64_t PriorityQueueCaSpec::symmetry_class(
    Symbol object, const Operation& op) const {
  if (object != object_ || op.is_pending()) return 0;
  std::uint64_t h = op.method.id();
  h = h * 0x9e3779b97f4a7c15ull + op.arg.hash();
  h = h * 0x9e3779b97f4a7c15ull + op.ret->hash();
  return h | (1ull << 63);  // nonzero: 0 means "never merged"
}

std::optional<OrderCheckOutcome> PriorityQueueCaSpec::order_check(
    const std::vector<OpRecord>& ops, bool complete_pending) const {
  engine::OrderCheckRequest req;
  req.object = object_;
  req.insert_method = insert_symbol();
  req.delete_method = delete_min_symbol();
  req.complete_pending = complete_pending;
  return engine::order_check_priority_queue(ops, req);
}

}  // namespace cal
