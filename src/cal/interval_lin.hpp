// Interval-linearizability (Castañeda, Rajsbaum & Raynal) — the strict
// generalization of set-linearizability discussed in §6 of the paper.
//
// Where a CA-trace maps every operation to exactly one CA-element, an
// interval-sequential execution maps every operation to a *consecutive
// interval of rounds*: the operation participates in each round of its
// interval, starting in the first and returning in the last. This checker
// decides interval-linearizability of a history against an IntervalSpec.
// CAL is the special case where every interval has length one; tests
// cross-validate the two checkers on such specs.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "cal/history.hpp"
#include "cal/operation.hpp"
#include "cal/spec.hpp"
#include "cal/symbol.hpp"

namespace cal {

/// One participant of a round.
struct IntervalOpRef {
  Operation op;      ///< ret is empty for pending invocations
  bool starts;       ///< first round of this operation's interval
  bool ends;         ///< last round (the operation returns here)
};

/// One admissible outcome of a round: the successor state, plus the return
/// value decided for every participant with ends == true (indexed in step
/// with the participant's position; participants with ends == false carry
/// no entry, i.e. std::nullopt).
struct IntervalRoundResult {
  SpecState next;
  std::vector<std::optional<Value>> returns;
};

class IntervalSpec {
 public:
  virtual ~IntervalSpec() = default;

  [[nodiscard]] virtual SpecState initial() const = 0;

  /// Largest number of participants in a single round (0 = unbounded).
  [[nodiscard]] virtual std::size_t max_round_size() const = 0;

  /// All admissible outcomes of a round of `object` with the given
  /// participants. For a participant with a concrete `op.ret` and
  /// ends == true, outcomes must return exactly that value; for pending
  /// participants the spec chooses. Empty result = round not admissible.
  [[nodiscard]] virtual std::vector<IntervalRoundResult> round(
      const SpecState& state, Symbol object,
      const std::vector<IntervalOpRef>& participants) const = 0;
};

struct IntervalCheckOptions {
  std::size_t max_visited = 0;  ///< 0 = unlimited
  bool complete_pending = true;
  /// Worker threads (1 = sequential, bit-for-bit the historical checker;
  /// 0 = one per hardware thread). Parallel verdicts are identical; the
  /// chosen intervals and the diagnostic counters may differ.
  std::size_t threads = 1;
  /// Exact stored-key dedup instead of the default 128-bit fingerprints.
  bool exact_visited = false;
};

struct IntervalCheckResult {
  bool ok = false;
  bool exhausted = false;
  std::size_t visited_states = 0;
  /// Peak footprint of the visited set.
  std::size_t visited_bytes = 0;
  /// Round memoization (cal/step_cache.hpp): round outcome sets served
  /// from the per-search cache vs computed by IntervalSpec::round.
  std::size_t step_cache_hits = 0;
  std::size_t step_cache_misses = 0;
  /// On success, interval[i] = (first round, last round) of operation i of
  /// History::operations(); rounds are numbered globally across objects.
  std::optional<std::vector<std::pair<std::size_t, std::size_t>>> intervals;

  explicit operator bool() const noexcept { return ok; }
};

class IntervalLinChecker {
 public:
  explicit IntervalLinChecker(const IntervalSpec& spec,
                              IntervalCheckOptions options = {})
      : spec_(spec), options_(options) {}

  [[nodiscard]] IntervalCheckResult check(const History& history) const;
  [[nodiscard]] IntervalCheckResult check(
      const std::vector<OpRecord>& ops) const;

 private:
  const IntervalSpec& spec_;
  IntervalCheckOptions options_;
};

}  // namespace cal
