// Plain-text serialization of histories and CA-traces.
//
// Enables tooling (the cal-check CLI, golden files, interchange with other
// checkers). The grammar is line-oriented:
//
//   history line  := ("inv" | "res") WS thread WS object "." method
//                    [WS value]            ; value defaults to ()
//   thread        := "t" digits
//   value         := "()" | "true" | "false" | "inf" | int
//                  | "(" ("true"|"false") "," (int|"inf") ")"
//                  | "[" [int ("," int)*] "]"
//   comment       := "#" anything          ; blank lines ignored
//
// Example:
//   inv t1 E.exchange 3
//   inv t2 E.exchange 4
//   res t1 E.exchange (true,4)
//   res t2 E.exchange (true,3)
//
// Trace lines group operations of one CA-element with `|`:
//   elem E.{t1 exchange 3 (true,4) | t2 exchange 4 (true,3)}
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "cal/ca_trace.hpp"
#include "cal/history.hpp"

namespace cal {

struct ParseError {
  std::size_t line = 0;  ///< 1-based line number
  std::string message;
};

template <typename T>
struct ParseResult {
  std::optional<T> value;
  std::optional<ParseError> error;

  explicit operator bool() const noexcept { return value.has_value(); }
};

/// Parses a value token (see grammar above).
[[nodiscard]] std::optional<Value> parse_value(std::string_view token);

/// Renders a value in the grammar's syntax (inverse of parse_value).
[[nodiscard]] std::string format_value(const Value& v);

/// Parses one line of the history grammar — the streaming entry point
/// (cal-check --follow feeds a live tail through this). An engaged result
/// holds the action, or std::nullopt for blank/comment lines; the reported
/// error line is always 1 (callers track their own line numbers).
[[nodiscard]] ParseResult<std::optional<Action>> parse_action_line(
    std::string_view line);

/// Parses a whole history document.
[[nodiscard]] ParseResult<History> parse_history(std::string_view text);

/// Serializes a history in the line grammar (inverse of parse_history).
[[nodiscard]] std::string format_history(const History& h);

/// Parses a CA-trace document of `elem` lines.
[[nodiscard]] ParseResult<CaTrace> parse_trace(std::string_view text);

/// Serializes a CA-trace in the `elem` grammar.
[[nodiscard]] std::string format_trace(const CaTrace& t);

}  // namespace cal
