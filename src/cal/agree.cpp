#include "cal/agree.hpp"

#include <algorithm>

namespace cal {

namespace {

AgreeResult fail(std::string reason) {
  AgreeResult r;
  r.agrees = false;
  r.reason = std::move(reason);
  return r;
}

}  // namespace

AgreeResult agrees_with(const std::vector<OpRecord>& ops,
                        const CaTrace& trace) {
  constexpr std::size_t kUnassigned = static_cast<std::size_t>(-1);
  const std::size_t n = ops.size();

  for (const OpRecord& rec : ops) {
    if (rec.is_pending()) {
      return fail("history is not complete: pending operation " +
                  rec.op.to_string());
    }
  }

  std::vector<std::size_t> pi(n, kUnassigned);
  std::vector<bool> used(n, false);

  // Real-time predecessor lists, computed once — enabledness checks per
  // candidate are then proportional to the in-degree instead of O(n).
  std::vector<std::vector<std::size_t>> preds(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i && History::precedes(ops[j], ops[i])) {
        preds[i].push_back(j);
      }
    }
  }

  auto enabled = [&](std::size_t i) {
    if (used[i]) return false;
    for (std::size_t j : preds[i]) {
      if (!used[j]) return false;
    }
    return true;
  };

  for (std::size_t k = 0; k < trace.size(); ++k) {
    const CaElement& elem = trace[k];
    for (const Operation& want : elem.ops()) {
      // The unique order-preserving candidate: the unused, enabled history
      // operation equal to `want`. Equal operations share a thread and are
      // therefore ≺H-ordered, so at most one is enabled at a time.
      std::size_t found = kUnassigned;
      for (std::size_t i = 0; i < n; ++i) {
        if (!used[i] && ops[i].op == want && enabled(i)) {
          found = i;
          break;
        }
      }
      if (found == kUnassigned) {
        return fail("position " + std::to_string(k) +
                    ": no enabled history operation matches " +
                    want.to_string());
      }
      used[found] = true;
      pi[found] = k;
    }
    // Verify the element is an antichain image: no two operations mapped to
    // position k may be real-time ordered. (Enabledness already guarantees
    // this — two enabled ops cannot be ordered — so this is a self-check.)
    for (std::size_t i = 0; i < n; ++i) {
      if (pi[i] != k) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (pi[j] == k && History::precedes(ops[i], ops[j])) {
          return fail("position " + std::to_string(k) +
                      ": real-time-ordered operations mapped to the same "
                      "CA-element");
        }
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (!used[i]) {
      return fail("operation " + ops[i].op.to_string() +
                  " of the history is not covered by the trace");
    }
  }

  AgreeResult r;
  r.agrees = true;
  r.pi = std::move(pi);
  return r;
}

AgreeResult agrees_with(const History& history, const CaTrace& trace) {
  if (!history.well_formed()) return fail("history is not well-formed");
  return agrees_with(history.operations(), trace);
}

}  // namespace cal
