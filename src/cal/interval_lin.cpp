#include "cal/interval_lin.hpp"

#include <utility>
#include <vector>

#include "cal/engine/interval_policy.hpp"
#include "cal/engine/search_engine.hpp"
#include "cal/parallel/task_pool.hpp"

namespace cal {

namespace {

template <bool kShared, typename Driver>
IntervalCheckResult collect_result(Driver& driver,
                                   engine::IntervalPolicy<kShared>& policy,
                                   std::size_t n_ops) {
  const engine::SearchStats stats = driver.run();
  IntervalCheckResult result;
  result.ok = stats.found;
  result.exhausted = stats.exhausted;
  result.visited_states = stats.visited_states;
  result.visited_bytes = stats.visited_bytes;
  result.step_cache_hits = policy.step_cache_hits();
  result.step_cache_misses = policy.step_cache_misses();
  if (result.ok) {
    // The witness label path is the round sequence: label r is round r, so
    // each operation's interval is read straight off its starts/ends flags.
    std::vector<std::pair<std::size_t, std::size_t>> intervals(n_ops, {0, 0});
    const auto witness = driver.witness();
    for (std::size_t r = 0; r < witness.size(); ++r) {
      for (const auto& part : witness[r].parts) {
        if (part.starts) intervals[part.op].first = r;
        if (part.ends) intervals[part.op].second = r;
      }
    }
    result.intervals = std::move(intervals);
  }
  return result;
}

}  // namespace

IntervalCheckResult IntervalLinChecker::check(
    const std::vector<OpRecord>& ops) const {
  engine::SearchOptions sopts;
  sopts.max_visited = options_.max_visited;
  sopts.exact_visited = options_.exact_visited;
  const std::size_t threads = par::resolve_threads(options_.threads);
  if (threads > 1) {
    engine::IntervalPolicy<true> policy(ops, spec_,
                                        options_.complete_pending);
    engine::ParallelSearch<engine::IntervalPolicy<true>> driver(policy, sopts,
                                                                threads);
    return collect_result(driver, policy, ops.size());
  }
  engine::IntervalPolicy<false> policy(ops, spec_, options_.complete_pending);
  engine::SequentialSearch<engine::IntervalPolicy<false>> driver(policy,
                                                                 sopts);
  return collect_result(driver, policy, ops.size());
}

IntervalCheckResult IntervalLinChecker::check(const History& history) const {
  if (!history.well_formed()) {
    IntervalCheckResult r;
    r.ok = false;
    return r;
  }
  return check(history.operations());
}

}  // namespace cal
