#include "cal/interval_lin.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "cal/history_index.hpp"
#include "cal/step_cache.hpp"

namespace cal {

namespace {

using Mask = StateMask;

bool test_bit(const Mask& m, std::size_t i) { return mask_test(m, i); }
void set_bit(Mask& m, std::size_t i) { mask_set(m, i); }
void clear_bit(Mask& m, std::size_t i) { mask_clear(m, i); }

struct KeyHash {
  std::size_t operator()(const std::vector<std::int64_t>& k) const noexcept {
    return hash_state(k);
  }
};

class Search {
 public:
  Search(const std::vector<OpRecord>& ops, const IntervalSpec& spec,
         const IntervalCheckOptions& options)
      : ops_(ops), spec_(spec), options_(options), index_(ops) {
    intervals_.assign(ops_.size(), {0, 0});
  }

  IntervalCheckResult run() {
    IntervalCheckResult result;
    const std::size_t words = (ops_.size() + 63) / 64;
    Mask closed(words, 0);
    Mask open(words, 0);
    result.ok = dfs(spec_.initial(), closed, open, 0, 0);
    result.exhausted = exhausted_;
    result.visited_states = visited_.size();
    result.step_cache_hits = memo_.hits();
    result.step_cache_misses = memo_.misses();
    if (result.ok) result.intervals = intervals_;
    return result;
  }

 private:
  // An operation may start when every completed real-time predecessor has
  // *closed* (its response precedes our invocation in any explanation).
  bool may_start(std::size_t i, const Mask& closed, const Mask& open) const {
    if (test_bit(closed, i) || test_bit(open, i)) return false;
    for (std::size_t j : index_.preds(i)) {
      if (!test_bit(closed, j)) return false;
    }
    return true;
  }

  bool dfs(const SpecState& state, const Mask& closed, const Mask& open,
           std::size_t closed_completed, std::size_t round_no) {
    // Success: every completed operation has closed and nothing is left
    // half-open that the history says returned.
    if (closed_completed == index_.completed()) {
      bool open_completed = false;
      for (std::size_t i = 0; i < ops_.size(); ++i) {
        if (test_bit(open, i) && !ops_[i].is_pending()) {
          open_completed = true;
          break;
        }
      }
      if (!open_completed) return true;
    }
    if (options_.max_visited != 0 &&
        visited_.size() >= options_.max_visited) {
      exhausted_ = true;
      return false;
    }

    std::vector<std::int64_t> key;
    key.reserve(state.size() + closed.size() + open.size() + 1);
    key.push_back(static_cast<std::int64_t>(state.size()));
    key.insert(key.end(), state.begin(), state.end());
    for (std::uint64_t w : closed) key.push_back(static_cast<std::int64_t>(w));
    for (std::uint64_t w : open) key.push_back(static_cast<std::int64_t>(w));
    if (!visited_.insert(std::move(key)).second) return false;

    // Rounds are per-object: participants are the currently open operations
    // of the object plus any newly starting ones.
    std::unordered_map<Symbol, std::vector<std::size_t>> startable;
    std::unordered_map<Symbol, std::vector<std::size_t>> open_by_object;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (test_bit(open, i)) {
        open_by_object[ops_[i].op.object].push_back(i);
      } else if (may_start(i, closed, open)) {
        if (ops_[i].is_pending() && !options_.complete_pending) continue;
        startable[ops_[i].op.object].push_back(i);
      }
    }

    std::unordered_set<Symbol> objects;
    for (const auto& kv : startable) objects.insert(kv.first);
    for (const auto& kv : open_by_object) objects.insert(kv.first);

    for (Symbol object : objects) {
      const auto& st = startable[object];
      const auto& op = open_by_object[object];
      // Enumerate New ⊆ startable by bitmask (candidate sets are small).
      const std::size_t sn = st.size();
      for (std::size_t new_bits = 0; new_bits < (1ull << sn); ++new_bits) {
        std::vector<std::size_t> participants = op;
        std::vector<bool> starts(op.size(), false);
        for (std::size_t b = 0; b < sn; ++b) {
          if (new_bits & (1ull << b)) {
            participants.push_back(st[b]);
            starts.push_back(true);
          }
        }
        if (participants.empty()) continue;
        if (spec_.max_round_size() != 0 &&
            participants.size() > spec_.max_round_size()) {
          continue;
        }
        // Enumerate Close ⊆ participants.
        const std::size_t pn = participants.size();
        for (std::size_t close_bits = 0; close_bits < (1ull << pn);
             ++close_bits) {
          if (new_bits == 0 && close_bits == 0) continue;  // no-op round
          std::vector<IntervalOpRef> refs;
          refs.reserve(pn);
          for (std::size_t b = 0; b < pn; ++b) {
            refs.push_back(IntervalOpRef{ops_[participants[b]].op, starts[b],
                                         (close_bits >> b) & 1u ? true
                                                                : false});
          }
          if (step_round(state, closed, open, closed_completed, round_no,
                         object, participants, refs)) {
            return true;
          }
        }
      }
    }
    return false;
  }

  /// spec_.round through the per-search memo. The participants' op indices
  /// plus their (starts, ends) flags pin the query exactly — the round's
  /// outcome never depends on the round number or the masks. The returned
  /// reference stays valid across the recursion (node-based map).
  const std::vector<IntervalRoundResult>& rounded(
      const SpecState& state, Symbol object,
      const std::vector<std::size_t>& participants,
      const std::vector<IntervalOpRef>& refs) {
    memo_key_.clear();
    memo_key_.reserve(2 + participants.size() + state.size());
    memo_key_.push_back(static_cast<std::int64_t>(object.id()));
    memo_key_.push_back(static_cast<std::int64_t>(participants.size()));
    for (std::size_t b = 0; b < participants.size(); ++b) {
      memo_key_.push_back(static_cast<std::int64_t>(
          (participants[b] << 2) | (refs[b].starts ? 1u : 0u) |
          (refs[b].ends ? 2u : 0u)));
    }
    memo_key_.insert(memo_key_.end(), state.begin(), state.end());
    if (const auto* cached = memo_.find(memo_key_)) return *cached;
    return memo_.insert(StepKey(memo_key_), spec_.round(state, object, refs));
  }

  bool step_round(const SpecState& state, const Mask& closed,
                  const Mask& open, std::size_t closed_completed,
                  std::size_t round_no, Symbol object,
                  const std::vector<std::size_t>& participants,
                  const std::vector<IntervalOpRef>& refs) {
    for (const IntervalRoundResult& rr :
         rounded(state, object, participants, refs)) {
      Mask next_closed = closed;
      Mask next_open = open;
      std::size_t next_cc = closed_completed;
      for (std::size_t b = 0; b < refs.size(); ++b) {
        const std::size_t i = participants[b];
        if (refs[b].starts) {
          intervals_[i].first = round_no;
          set_bit(next_open, i);
        }
        if (refs[b].ends) {
          intervals_[i].second = round_no;
          clear_bit(next_open, i);
          set_bit(next_closed, i);
          if (!ops_[i].is_pending()) ++next_cc;
        }
      }
      if (dfs(rr.next, next_closed, next_open, next_cc, round_no + 1)) {
        return true;
      }
    }
    return false;
  }

  const std::vector<OpRecord>& ops_;
  const IntervalSpec& spec_;
  const IntervalCheckOptions& options_;
  HistoryIndex index_;
  std::unordered_set<std::vector<std::int64_t>, KeyHash> visited_;
  StepKey memo_key_;
  StepMemo<IntervalRoundResult> memo_;
  std::vector<std::pair<std::size_t, std::size_t>> intervals_;
  bool exhausted_ = false;
};

}  // namespace

IntervalCheckResult IntervalLinChecker::check(
    const std::vector<OpRecord>& ops) const {
  Search search(ops, spec_, options_);
  return search.run();
}

IntervalCheckResult IntervalLinChecker::check(const History& history) const {
  if (!history.well_formed()) {
    IntervalCheckResult r;
    r.ok = false;
    return r;
  }
  return check(history.operations());
}

}  // namespace cal
