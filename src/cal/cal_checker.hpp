// The CAL membership checker (Def. 6 of the paper).
//
// Given a well-formed history H and a CA-spec (a generator of the trace-set
// 𝒯), decide whether there exist a completion H^c ∈ complete(H) and a trace
// T ∈ 𝒯 with H^c ⊑CAL T. The search fires CA-elements one at a time:
//
//   * a candidate element is a non-empty set of *enabled* operations of one
//     object (enabled = every real-time predecessor already fired); enabled
//     sets are automatically antichains of ≺H, which is exactly Def. 5's
//     requirement that co-located operations overlap pairwise;
//   * pending invocations may be fired (the spec fills in their return
//     value — this realizes the response-extension half of complete(H)) or
//     left unfired forever (the invocation-removal half);
//   * the search succeeds when every *completed* operation has been fired;
//   * states (spec state, fired-set) are memoized, Wing–Gong style.
//
// This generalizes the classical linearizability checker: running it with
// SeqAsCaSpec(S) decides classical linearizability w.r.t. S.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "cal/ca_trace.hpp"
#include "cal/history.hpp"
#include "cal/spec.hpp"

namespace cal {

struct CalCheckOptions {
  /// Hard cap on visited (state, fired-set) pairs; 0 = unlimited. The
  /// checker reports `exhausted` when the cap trips.
  std::size_t max_visited = 0;
  /// Also try firing pending invocations (completion by response extension).
  /// When false, pending invocations are always dropped.
  bool complete_pending = true;
  /// Worker threads for the search (1 = the sequential engine, bit-for-bit
  /// the historical behavior including the witness; 0 = one per hardware
  /// thread). With more than one thread the top levels of the DFS fork
  /// into work-stealing pool tasks that share the deduplication table and
  /// cooperatively cancel on the first witness: the verdict is identical
  /// to the sequential one, but the witness may be any (valid) witness and
  /// `visited_states` may vary slightly from run to run.
  std::size_t threads = 1;
  /// Deduplicate visited nodes by their full encodings instead of the
  /// default 128-bit fingerprints (cal/fingerprint.hpp). Fingerprints
  /// shrink the visited set to 16 bytes/node at a ~2^-64 per-pair risk of
  /// a false prune; this switch restores the stored-key table so tests can
  /// pin verdict equality between the two modes.
  bool exact_visited = false;
  /// Symmetry reduction: operations the spec declares interchangeable
  /// (CaSpec::symmetry_class) and that share identical real-time
  /// constraints are *counted*, not identified, in the dedup key, merging
  /// search states that differ only in which of them fired. Verdicts are
  /// unchanged; visited_states can drop exponentially in the number of
  /// interchangeable operations (e.g. an exchanger history where w threads
  /// all fail: 2^w fired-subsets collapse to w+1 counts).
  bool symmetry = false;
  /// Consult CaSpec::order_check before the engine. Specs with a
  /// polynomial membership characterization (the priority queue) decide
  /// the history without any state search; a declined order check falls
  /// back to the engine. Disable to force the engine (cal_check
  /// --no-order-check, differential tests).
  bool order_check = true;
};

struct CalCheckResult {
  bool ok = false;
  /// True when the search hit `max_visited` before finding a witness; `ok`
  /// is then inconclusive-negative.
  bool exhausted = false;
  /// On success: a witness trace T ∈ 𝒯 with H^c ⊑CAL T.
  std::optional<CaTrace> witness;
  /// Search effort diagnostics.
  std::size_t visited_states = 0;
  std::size_t fired_elements = 0;
  /// Bytes held by the visited set when the search finished; the set only
  /// grows, so this is also its peak (estimated key+node footprint in
  /// exact mode, exact table bytes in fingerprint mode).
  std::size_t visited_bytes = 0;
  /// Spec-step memoization: transition sets served from the per-search
  /// cache vs computed by CaSpec::step.
  std::size_t step_cache_hits = 0;
  std::size_t step_cache_misses = 0;
  /// Candidate subsets discarded by CaSpec::compatible before any step().
  std::size_t pruned_subsets = 0;
  /// With CalCheckOptions::symmetry: dedup hits on nodes with a partially
  /// fired symmetry group — an upper bound on the merges classic dedup
  /// would have missed.
  std::size_t symmetry_merged = 0;
  /// True when the verdict came from CaSpec::order_check; the engine never
  /// ran and the engine counters above are all zero.
  bool order_checked = false;
  /// Order-check effort counters (see OrderCheckOutcome): per-priority
  /// value segments examined, forced-presence zones built, candidate
  /// points bumped past a zone.
  std::size_t order_values = 0;
  std::size_t order_zones = 0;
  std::size_t order_bumps = 0;

  explicit operator bool() const noexcept { return ok; }
};

class CalChecker {
 public:
  explicit CalChecker(const CaSpec& spec, CalCheckOptions options = {})
      : spec_(spec), options_(options) {}

  /// Decides CAL membership of `history` (must be well-formed).
  [[nodiscard]] CalCheckResult check(const History& history) const;

  /// As above, on pre-extracted operation records.
  [[nodiscard]] CalCheckResult check(const std::vector<OpRecord>& ops) const;

 private:
  const CaSpec& spec_;
  CalCheckOptions options_;
};

}  // namespace cal
