// Classical linearizability checker (Herlihy & Wing; Wing–Gong search with
// Lowe-style memoization).
//
// This is the notion CAL generalizes (§3 of the paper): a history is
// linearizable w.r.t. a sequential spec iff some completion can be explained
// by a *sequential* history — equivalently, iff it is CAL w.r.t. the
// degenerate CA-spec whose elements are all singletons. The dedicated
// implementation here avoids the subset machinery of the CAL checker and
// serves as the baseline in the checker benchmarks; tests cross-validate it
// against CalChecker + SeqAsCaSpec on random histories.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "cal/ca_trace.hpp"
#include "cal/history.hpp"
#include "cal/spec.hpp"

namespace cal {

struct LinCheckOptions {
  std::size_t max_visited = 0;  ///< 0 = unlimited
  bool complete_pending = true;
  /// Worker threads for the search (1 = the sequential engine, bit-for-bit
  /// the historical behavior including the witness; 0 = one per hardware
  /// thread). Parallel runs share the engine's striped-lock dedup table
  /// and cancel cooperatively on the first witness: the verdict is
  /// identical to the sequential one, but the witness may be any (valid)
  /// witness and `visited_states` may vary slightly from run to run.
  std::size_t threads = 1;
  /// Deduplicate visited nodes by their full encodings instead of the
  /// default 128-bit fingerprints (cal/fingerprint.hpp, ~2^-64 per-pair
  /// false-prune risk).
  bool exact_visited = false;
};

struct LinCheckResult {
  bool ok = false;
  bool exhausted = false;
  /// On success: a witness linearization (sequence of completed operations).
  std::optional<std::vector<Operation>> witness;
  std::size_t visited_states = 0;
  /// Peak footprint of the visited set.
  std::size_t visited_bytes = 0;
  /// Spec-step memoization (cal/step_cache.hpp): transition sets served
  /// from the per-search cache vs computed by SequentialSpec::step.
  std::size_t step_cache_hits = 0;
  std::size_t step_cache_misses = 0;

  explicit operator bool() const noexcept { return ok; }
};

class LinChecker {
 public:
  explicit LinChecker(const SequentialSpec& spec, LinCheckOptions options = {})
      : spec_(spec), options_(options) {}

  [[nodiscard]] LinCheckResult check(const History& history) const;
  [[nodiscard]] LinCheckResult check(const std::vector<OpRecord>& ops) const;

 private:
  const SequentialSpec& spec_;
  LinCheckOptions options_;
};

}  // namespace cal
