// Classical linearizability checker (Herlihy & Wing; Wing–Gong search with
// Lowe-style memoization).
//
// This is the notion CAL generalizes (§3 of the paper): a history is
// linearizable w.r.t. a sequential spec iff some completion can be explained
// by a *sequential* history — equivalently, iff it is CAL w.r.t. the
// degenerate CA-spec whose elements are all singletons. The dedicated
// implementation here avoids the subset machinery of the CAL checker and
// serves as the baseline in the checker benchmarks; tests cross-validate it
// against CalChecker + SeqAsCaSpec on random histories.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "cal/ca_trace.hpp"
#include "cal/history.hpp"
#include "cal/spec.hpp"

namespace cal {

struct LinCheckOptions {
  std::size_t max_visited = 0;  ///< 0 = unlimited
  bool complete_pending = true;
};

struct LinCheckResult {
  bool ok = false;
  bool exhausted = false;
  /// On success: a witness linearization (sequence of completed operations).
  std::optional<std::vector<Operation>> witness;
  std::size_t visited_states = 0;
  /// Spec-step memoization (cal/step_cache.hpp): transition sets served
  /// from the per-search cache vs computed by SequentialSpec::step.
  std::size_t step_cache_hits = 0;
  std::size_t step_cache_misses = 0;

  explicit operator bool() const noexcept { return ok; }
};

class LinChecker {
 public:
  explicit LinChecker(const SequentialSpec& spec, LinCheckOptions options = {})
      : spec_(spec), options_(options) {}

  [[nodiscard]] LinCheckResult check(const History& history) const;
  [[nodiscard]] LinCheckResult check(const std::vector<OpRecord>& ops) const;

 private:
  const SequentialSpec& spec_;
  LinCheckOptions options_;
};

}  // namespace cal
