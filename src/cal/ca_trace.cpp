#include "cal/ca_trace.hpp"

#include <algorithm>
#include <cassert>

namespace cal {

CaElement::CaElement(Symbol o, std::vector<Operation> ops)
    : object_(o), ops_(std::move(ops)) {
  for ([[maybe_unused]] const Operation& op : ops_) {
    assert(op.object == o && "CA-element operation on a different object");
    assert(!op.is_pending() && "CA-elements contain completed operations");
  }
  std::sort(ops_.begin(), ops_.end());
  ops_.erase(std::unique(ops_.begin(), ops_.end()), ops_.end());
}

bool CaElement::mentions_thread(ThreadId t) const noexcept {
  return std::any_of(ops_.begin(), ops_.end(),
                     [t](const Operation& op) { return op.tid == t; });
}

bool CaElement::contains(const Operation& op) const noexcept {
  return std::binary_search(ops_.begin(), ops_.end(), op);
}

CaElement CaElement::swap(Symbol o, Symbol method, ThreadId t, std::int64_t v,
                          ThreadId t2, std::int64_t v2) {
  assert(t != t2 && "swap requires two distinct threads");
  return CaElement(
      o, {Operation::make(t, o, method, Value::integer(v),
                          Value::pair(true, v2)),
          Operation::make(t2, o, method, Value::integer(v2),
                          Value::pair(true, v))});
}

CaElement CaElement::singleton(Symbol o, Operation op) {
  return CaElement(o, {std::move(op)});
}

std::size_t CaElement::hash() const noexcept {
  std::size_t h = std::hash<std::uint32_t>{}(object_.id());
  for (const Operation& op : ops_) {
    h ^= op.hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

std::string CaElement::to_string() const {
  std::string out = object_.str() + ".{";
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    if (i != 0) out += ", ";
    out += ops_[i].to_string();
  }
  out += "}";
  return out;
}

CaTrace CaTrace::project_thread(ThreadId t) const {
  CaTrace out;
  for (const CaElement& e : elements_) {
    if (e.mentions_thread(t)) out.append(e);
  }
  return out;
}

CaTrace CaTrace::project_object(Symbol o) const {
  CaTrace out;
  for (const CaElement& e : elements_) {
    if (e.object() == o) out.append(e);
  }
  return out;
}

std::vector<Operation> CaTrace::all_ops() const {
  std::vector<Operation> out;
  for (const CaElement& e : elements_) {
    out.insert(out.end(), e.ops().begin(), e.ops().end());
  }
  return out;
}

std::string CaTrace::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < elements_.size(); ++i) {
    out += std::to_string(i) + ": " + elements_[i].to_string() + "\n";
  }
  return out;
}

}  // namespace cal
