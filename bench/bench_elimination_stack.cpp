// Experiment T-ELIM — the motivating claim the paper imports from Hendler,
// Shavit & Yerushalmi (§1, §2.2): the elimination stack "achieves high
// performance under high workloads by allowing concurrent pairs of push and
// pop operations to eliminate each other and thus reduce contention on the
// main stack".
//
// Regenerated series: throughput of a 50/50 push/pop workload vs thread
// count, for
//   * elimination_stack    — Fig. 2 composite (central stack + elim array),
//   * treiber_stack        — retrying CAS stack, no elimination (baseline),
//   * mutex_stack          — coarse-locked stack (sanity floor).
// Counters: ops/s and the fraction of operations completed by elimination.
//
// Expected shape (paper / HSY): under contention the elimination stack
// sustains or grows throughput while the CAS-retry stack degrades. NOTE:
// on a single-core host (as in CI containers) true CAS contention is rare
// and all curves flatten; the *eliminated fraction* counter still shows the
// mechanism engaging as threads increase.
#include <benchmark/benchmark.h>

#include <mutex>
#include <vector>

#include "objects/elimination_stack.hpp"
#include "objects/treiber_stack.hpp"
#include "runtime/thread_registry.hpp"

namespace {

using namespace cal::objects;  // NOLINT: bench file
using cal::Symbol;
namespace runtime = cal::runtime;

/// Coarse-locked stack: the sanity floor.
class MutexStack {
 public:
  void push(std::int64_t v) {
    std::lock_guard lock(mu_);
    data_.push_back(v);
  }
  PopResult pop() {
    std::lock_guard lock(mu_);
    if (data_.empty()) return {false, 0};
    PopResult r{true, data_.back()};
    data_.pop_back();
    return r;
  }

 private:
  std::mutex mu_;
  std::vector<std::int64_t> data_;
};

struct ElimFixture {
  runtime::EpochDomain ebr;
  EliminationStack stack;
  explicit ElimFixture(std::size_t width)
      : stack(ebr, Symbol{"ES"}, width, nullptr, nullptr,
              /*exchange_spins=*/128) {}
};

void BM_EliminationStack(benchmark::State& state) {
  static ElimFixture* fixture = nullptr;
  static std::uint64_t elims_before = 0;
  if (state.thread_index() == 0) {
    fixture = new ElimFixture(static_cast<std::size_t>(state.range(0)));
    // Pre-populate so pops do not spin on empty.
    for (int i = 1; i <= 4096; ++i) fixture->stack.push(0, i);
    elims_before = fixture->stack.eliminations();
  }
  runtime::ThreadIdGuard tid;
  std::int64_t v = 1;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    fixture->stack.push(tid.tid(), v++);
    benchmark::DoNotOptimize(fixture->stack.pop(tid.tid()));
    ops += 2;
  }
  state.counters["ops/s"] =
      benchmark::Counter(static_cast<double>(ops), benchmark::Counter::kIsRate);
  if (state.thread_index() == 0) {
    state.counters["eliminated_frac"] = static_cast<double>(
        fixture->stack.eliminations() - elims_before) /
        static_cast<double>(state.iterations() * 2 * state.threads() + 1);
    delete fixture;
    fixture = nullptr;
  }
}
BENCHMARK(BM_EliminationStack)
    ->Arg(4)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void BM_TreiberStack(benchmark::State& state) {
  static runtime::EpochDomain* ebr = nullptr;
  static TreiberStack* stack = nullptr;
  if (state.thread_index() == 0) {
    ebr = new runtime::EpochDomain();
    stack = new TreiberStack(*ebr, Symbol{"TS"});
    for (int i = 1; i <= 4096; ++i) stack->push(0, i);
  }
  runtime::ThreadIdGuard tid;
  std::int64_t v = 1;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    stack->push(tid.tid(), v++);
    benchmark::DoNotOptimize(stack->pop(tid.tid()));
    ops += 2;
  }
  state.counters["ops/s"] =
      benchmark::Counter(static_cast<double>(ops), benchmark::Counter::kIsRate);
  if (state.thread_index() == 0) {
    delete stack;
    delete ebr;
    stack = nullptr;
    ebr = nullptr;
  }
}
BENCHMARK(BM_TreiberStack)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void BM_MutexStack(benchmark::State& state) {
  static MutexStack* stack = nullptr;
  if (state.thread_index() == 0) {
    stack = new MutexStack();
    for (int i = 1; i <= 4096; ++i) stack->push(i);
  }
  std::int64_t v = 1;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    stack->push(v++);
    benchmark::DoNotOptimize(stack->pop());
    ops += 2;
  }
  state.counters["ops/s"] =
      benchmark::Counter(static_cast<double>(ops), benchmark::Counter::kIsRate);
  if (state.thread_index() == 0) {
    delete stack;
    stack = nullptr;
  }
}
BENCHMARK(BM_MutexStack)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// Ablation: elimination-array width K at fixed thread count (DESIGN.md:
// AR exists "to reduce contention" over a single exchanger).
void BM_EliminationStack_WidthAblation(benchmark::State& state) {
  static ElimFixture* fixture = nullptr;
  if (state.thread_index() == 0) {
    fixture = new ElimFixture(static_cast<std::size_t>(state.range(0)));
    for (int i = 1; i <= 4096; ++i) fixture->stack.push(0, i);
  }
  runtime::ThreadIdGuard tid;
  std::int64_t v = 1;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    fixture->stack.push(tid.tid(), v++);
    benchmark::DoNotOptimize(fixture->stack.pop(tid.tid()));
    ops += 2;
  }
  state.counters["ops/s"] =
      benchmark::Counter(static_cast<double>(ops), benchmark::Counter::kIsRate);
  if (state.thread_index() == 0) {
    delete fixture;
    fixture = nullptr;
  }
}
BENCHMARK(BM_EliminationStack_WidthAblation)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Arg(32)
    ->Threads(4)
    ->UseRealTime();

}  // namespace

