// Experiment FIG3 — regenerates Figure 3 of the paper as a verdict table,
// and times the checkers on the three histories.
//
// Paper claim (§3): H1 and H2 "might occur when P executes" and are
// CA-linearizable w.r.t. the exchanger CA-spec; H3 (the sequential
// explanation) cannot occur, and any sequential spec admitting it also
// admits the undesired prefix H3' (a partner-less successful exchange).
#include <benchmark/benchmark.h>

#include "bench_context.hpp"

#include <cstdio>

#include "cal/agree.hpp"
#include "cal/cal_checker.hpp"
#include "cal/lin_checker.hpp"
#include "cal/specs/exchanger_spec.hpp"

namespace {

using namespace cal;  // NOLINT: bench file

Value iv(std::int64_t x) { return Value::integer(x); }

History h1() {
  return HistoryBuilder()
      .call(1, "E", "exchange", iv(3))
      .call(2, "E", "exchange", iv(4))
      .call(3, "E", "exchange", iv(7))
      .ret(1, Value::pair(true, 4))
      .ret(2, Value::pair(true, 3))
      .ret(3, Value::pair(false, 7))
      .history();
}

History h2() {
  return HistoryBuilder()
      .call(1, "E", "exchange", iv(3))
      .call(2, "E", "exchange", iv(4))
      .ret(1, Value::pair(true, 4))
      .ret(2, Value::pair(true, 3))
      .call(3, "E", "exchange", iv(7))
      .ret(3, Value::pair(false, 7))
      .history();
}

History h3() {
  return HistoryBuilder()
      .op(1, "E", "exchange", iv(3), Value::pair(true, 4))
      .op(2, "E", "exchange", iv(4), Value::pair(true, 3))
      .op(3, "E", "exchange", iv(7), Value::pair(false, 7))
      .history();
}

History h3_prefix() {
  return HistoryBuilder()
      .op(1, "E", "exchange", iv(3), Value::pair(true, 4))
      .history();
}

const ExchangerSpec& spec() {
  static const ExchangerSpec s{Symbol{"E"}, Symbol{"exchange"}};
  return s;
}

void print_verdict_table() {
  CalChecker checker(spec());
  struct Row {
    const char* name;
    History h;
    const char* paper;
  };
  const Row rows[] = {
      {"H1 (concurrent, swap+fail)", h1(), "occurs; CAL-explained"},
      {"H2 (CA-history)", h2(), "occurs; CAL-explained"},
      {"H3 (sequential explanation)", h3(), "cannot occur; rejected"},
      {"H3' (prefix: lonely swap)", h3_prefix(), "undesired; rejected"},
  };
  std::printf("=== FIG3: Figure 3 verdict table (exchanger CA-spec) ===\n");
  std::printf("%-30s %-26s %-10s\n", "history", "paper", "checker");
  for (const Row& row : rows) {
    CalCheckResult r = checker.check(row.h);
    std::printf("%-30s %-26s %-10s\n", row.name, row.paper,
                r.ok ? "ACCEPT" : "REJECT");
  }
  std::printf("\n--- H1 rendered (cf. Fig. 3) ---\n%s\n",
              h1().render_ascii().c_str());
}

void BM_Fig3_H1_CalCheck(benchmark::State& state) {
  const History h = h1();
  CalChecker checker(spec());
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.check(h).ok);
  }
}
BENCHMARK(BM_Fig3_H1_CalCheck);

void BM_Fig3_H2_CalCheck(benchmark::State& state) {
  const History h = h2();
  CalChecker checker(spec());
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.check(h).ok);
  }
}
BENCHMARK(BM_Fig3_H2_CalCheck);

void BM_Fig3_H3_CalReject(benchmark::State& state) {
  const History h = h3();
  CalChecker checker(spec());
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.check(h).ok);
  }
}
BENCHMARK(BM_Fig3_H3_CalReject);

void BM_Fig3_AgreeWitness(benchmark::State& state) {
  // Cost of a single Def. 5 agreement check on the H1 witness.
  const History h = h1();
  CalChecker checker(spec());
  const CaTrace witness = *checker.check(h).witness;
  for (auto _ : state) {
    benchmark::DoNotOptimize(agrees_with(h, witness).agrees);
  }
}
BENCHMARK(BM_Fig3_AgreeWitness);

}  // namespace

int main(int argc, char** argv) {
  print_verdict_table();
  benchmark::Initialize(&argc, argv);
  calbench::add_build_type_context();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
