// Experiment T-MC — cost of the verification substrate itself: exhaustive
// exploration of the simulated exchanger and elimination stack (the same
// objects/core/ bodies the runtime executes, stepped through SimEnv).
//
// Series regenerated:
//   * states/transitions/time vs configuration size (threads × ops);
//   * state merging on vs off (the soundness-preserving reduction);
//   * rely/guarantee audit overhead (Fig. 4 actions + J + proof outline).
//
// Experiment T-ENV — cost of the environment abstraction on the *real*
// side: BM_Env_StepOverhead compares the RealEnv-instantiated Treiber
// stack against a hand-written direct-atomic twin (the shape the objects
// had before unification). See BENCH_env_unification.json.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <utility>

#include "cal/cal_checker.hpp"
#include "cal/specs/elim_views.hpp"
#include "cal/specs/exchanger_spec.hpp"
#include "cal/specs/stack_spec.hpp"
#include "objects/treiber_stack.hpp"
#include "runtime/reclaim/ebr.hpp"
#include "sched/explorer.hpp"
#include "sched/rg.hpp"
#include "sched/sim_objects.hpp"

namespace {

using namespace cal;         // NOLINT: bench file
using namespace cal::sched;  // NOLINT: bench file

Value iv(std::int64_t x) { return Value::integer(x); }

struct ExchangerConfig {
  WorldConfig config;
  ExchangerSpec spec{Symbol{"E"}, Symbol{"exchange"}};
  const SimExchanger* machine = nullptr;
  std::vector<std::unique_ptr<SimObject>> objects;
};

ExchangerConfig make_exchanger(std::size_t threads, std::size_t ops) {
  ExchangerConfig c;
  auto machine = std::make_unique<SimExchanger>(Symbol{"E"});
  c.machine = machine.get();
  c.objects.push_back(std::move(machine));
  for (std::size_t i = 0; i < threads; ++i) {
    ThreadProgram p;
    p.tid = static_cast<ThreadId>(i);
    for (std::size_t k = 0; k < ops; ++k) {
      p.calls.push_back(Call{0, Symbol{"exchange"},
                             iv(static_cast<std::int64_t>(i * 100 + k))});
    }
    c.config.programs.push_back(std::move(p));
  }
  c.config.object_names = {Symbol{"E"}};
  c.config.spec = &c.spec;
  c.config.record_trace = true;
  // Small heaps keep World copies (and the visited-set keys) compact; each
  // exchange allocates one 3-cell offer.
  c.config.heap_cells = 8;
  c.config.global_cells = 8;
  return c;
}

void BM_Explore_Exchanger(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto ops = static_cast<std::size_t>(state.range(1));
  std::size_t states = 0;
  std::size_t transitions = 0;
  for (auto _ : state) {
    ExchangerConfig c = make_exchanger(threads, ops);
    Explorer ex(c.config, std::move(c.objects));
    ExploreResult r = ex.run();
    benchmark::DoNotOptimize(r.ok());
    states = r.states;
    transitions = r.transitions;
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["transitions"] = static_cast<double>(transitions);
}
BENCHMARK(BM_Explore_Exchanger)
    ->ArgNames({"threads", "ops"})
    ->Args({2, 1})
    ->Args({2, 2})
    ->Args({3, 1})
    ->Args({3, 2})
    ->Args({4, 1})
    ->Unit(benchmark::kMillisecond);

void BM_Explore_Exchanger_Parallel(benchmark::State& state) {
  // jobs=1 is the sequential engine; higher counts split the schedule
  // tree's root frontier across the work-stealing pool (the speedup claim
  // of the parallel-search PR is jobs=8 vs jobs=1).
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto ops = static_cast<std::size_t>(state.range(1));
  const auto jobs = static_cast<std::size_t>(state.range(2));
  std::size_t states = 0;
  for (auto _ : state) {
    ExchangerConfig c = make_exchanger(threads, ops);
    ExploreOptions opts;
    opts.threads = jobs;
    Explorer ex(c.config, std::move(c.objects), opts);
    ExploreResult r = ex.run();
    benchmark::DoNotOptimize(r.ok());
    states = r.states;
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_Explore_Exchanger_Parallel)
    ->ArgNames({"threads", "ops", "jobs"})
    ->Args({3, 2, 1})
    ->Args({3, 2, 2})
    ->Args({3, 2, 8})
    ->Args({4, 1, 1})
    ->Args({4, 1, 8})
    ->Unit(benchmark::kMillisecond);

void BM_Explore_Exchanger_NoMerge(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto ops = static_cast<std::size_t>(state.range(1));
  std::size_t states = 0;
  for (auto _ : state) {
    ExchangerConfig c = make_exchanger(threads, ops);
    ExploreOptions opts;
    opts.merge_states = false;
    Explorer ex(c.config, std::move(c.objects), opts);
    ExploreResult r = ex.run();
    benchmark::DoNotOptimize(r.ok());
    states = r.states;
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_Explore_Exchanger_NoMerge)
    ->ArgNames({"threads", "ops"})
    ->Args({2, 1})
    ->Args({2, 2})
    ->Args({3, 1})
    ->Unit(benchmark::kMillisecond);

void BM_Explore_Exchanger_WithRgAudit(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto ops = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    ExchangerConfig c = make_exchanger(threads, ops);
    ExchangerRgAuditor auditor(*c.machine);
    Explorer ex(c.config, std::move(c.objects));
    ex.set_auditor(&auditor);
    ExploreResult r = ex.run();
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_Explore_Exchanger_WithRgAudit)
    ->ArgNames({"threads", "ops"})
    ->Args({2, 1})
    ->Args({2, 2})
    ->Args({3, 1})
    ->Unit(benchmark::kMillisecond);

void BM_Explore_ElimStack(benchmark::State& state) {
  const auto pushers = static_cast<std::size_t>(state.range(0));
  const auto poppers = static_cast<std::size_t>(state.range(1));
  std::size_t states = 0;
  for (auto _ : state) {
    auto es_seq = std::make_shared<StackSpec>(Symbol{"ES"});
    SeqAsCaSpec spec(es_seq);
    auto view = make_elimination_stack_view(Symbol{"ES"}, Symbol{"ES.S"},
                                            Symbol{"ES.AR"}, 1);
    WorldConfig cfg;
    std::vector<std::unique_ptr<SimObject>> objects;
    objects.push_back(std::make_unique<SimElimStack>(
        Symbol{"ES"}, Symbol{"ES.S"}, Symbol{"ES.AR"}, 1, 1));
    ThreadId tid = 0;
    for (std::size_t i = 0; i < pushers; ++i, ++tid) {
      ThreadProgram p;
      p.tid = tid;
      p.calls = {Call{0, Symbol{"push"}, iv(10 * (tid + 1))}};
      cfg.programs.push_back(std::move(p));
    }
    for (std::size_t i = 0; i < poppers; ++i, ++tid) {
      ThreadProgram p;
      p.tid = tid;
      p.calls = {Call{0, Symbol{"pop"}, Value::unit()}};
      cfg.programs.push_back(std::move(p));
    }
    cfg.object_names = {Symbol{"ES"}};
    cfg.spec = &spec;
    cfg.view = view.get();
    cfg.record_trace = true;
    cfg.heap_cells = 24;
    cfg.global_cells = 8;
    Explorer ex(cfg, std::move(objects));
    ExploreResult r = ex.run();
    benchmark::DoNotOptimize(r.ok());
    states = r.states;
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_Explore_ElimStack)
    ->ArgNames({"pushers", "poppers"})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({2, 2})
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Experiment T-POR — sleep-set partial-order reduction and thread-symmetry
// canonicalization (BENCH_por.json via bench/run_benches.sh). The config is
// the reduction's best case and the plain search's worst: identically
// programmed threads offering the same value, tids drawn outside the
// address range as the symmetry value discipline requires. A fixed state
// budget keeps the unreduced 6-thread row finite — it exhausts the budget
// (counter `exhausted`), the reduced rows complete under it.

ExchangerConfig make_symmetric_exchanger(std::size_t threads) {
  ExchangerConfig c;
  auto machine = std::make_unique<SimExchanger>(Symbol{"E"});
  c.machine = machine.get();
  c.objects.push_back(std::move(machine));
  for (std::size_t i = 0; i < threads; ++i) {
    ThreadProgram p;
    p.tid = static_cast<ThreadId>(1000 + i);
    p.calls = {Call{0, Symbol{"exchange"}, iv(7)}};
    c.config.programs.push_back(std::move(p));
  }
  c.config.object_names = {Symbol{"E"}};
  c.config.spec = &c.spec;
  c.config.record_trace = true;
  c.config.heap_cells = 16;
  c.config.global_cells = 8;
  return c;
}

void BM_Explore_Reduction(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kBudget = 200000;
  ExploreOptions opts;
  opts.por = state.range(1) != 0;
  opts.symmetry = state.range(2) != 0;
  opts.max_states = kBudget;
  ExploreResult r;
  for (auto _ : state) {
    ExchangerConfig c = make_symmetric_exchanger(threads);
    Explorer ex(c.config, std::move(c.objects), opts);
    r = ex.run();
    benchmark::DoNotOptimize(r.ok());
  }
  state.counters["states"] = static_cast<double>(r.states);
  state.counters["por_pruned"] = static_cast<double>(r.por_pruned);
  state.counters["symmetry_merged"] = static_cast<double>(r.symmetry_merged);
  state.counters["exhausted"] = r.exhausted ? 1.0 : 0.0;
}
BENCHMARK(BM_Explore_Reduction)
    ->ArgNames({"threads", "por", "sym"})
    ->Args({4, 0, 0})
    ->Args({4, 1, 0})
    ->Args({4, 0, 1})
    ->Args({4, 1, 1})
    ->Args({6, 0, 0})
    ->Args({6, 0, 1})
    ->Args({6, 1, 1})
    ->Unit(benchmark::kMillisecond);

/// The checker-side axis of T-POR: the all-fail overlap history of
/// bench_checker_scaling's BM_CalChecker_OverlapWidth series, with
/// CalCheckOptions::symmetry as the swept flag. Every failed exchange is
/// interchangeable, so the canonical encoding collapses the 2^width fired
/// subsets to width+1 per-group counts.
History overlap_history(std::size_t width, bool poison_last) {
  HistoryBuilder b;
  for (ThreadId t = 1; t <= width; ++t) {
    b.call(t, "E", "exchange", iv(static_cast<std::int64_t>(t)));
  }
  for (ThreadId t = 1; t <= width; ++t) {
    b.ret(t, Value::pair(false, static_cast<std::int64_t>(t)));
  }
  History h = b.history();
  if (!poison_last) return h;
  std::vector<Action> actions = h.actions();
  actions.back().payload = Value::pair(true, 424242);  // impossible swap
  return History{std::move(actions)};
}

void check_overlap(benchmark::State& state, bool poison_last) {
  const History h = overlap_history(static_cast<std::size_t>(state.range(0)),
                                    poison_last);
  ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  CalCheckOptions opts;
  opts.symmetry = state.range(1) != 0;
  CalChecker checker(spec, opts);
  CalCheckResult r;
  for (auto _ : state) {
    r = checker.check(h);
    benchmark::DoNotOptimize(r.ok);
  }
  state.counters["visited"] = static_cast<double>(r.visited_states);
  state.counters["symmetry_merged"] =
      static_cast<double>(r.symmetry_merged);
}

void BM_CalChecker_OverlapWidth_Sym(benchmark::State& state) {
  check_overlap(state, /*poison_last=*/false);
}
BENCHMARK(BM_CalChecker_OverlapWidth_Sym)
    ->ArgNames({"width", "sym"})
    ->Args({7, 0})
    ->Args({7, 1})
    ->Args({10, 0})
    ->Args({10, 1})
    ->Args({12, 0})
    ->Args({12, 1});

// Rejection exhausts the search: the plain checker visits every fired
// subset (2^(width-1) states), the symmetric one O(width) — this is the
// headline visited-state reduction of T-POR.
void BM_CalChecker_OverlapWidth_Reject_Sym(benchmark::State& state) {
  check_overlap(state, /*poison_last=*/true);
}
BENCHMARK(BM_CalChecker_OverlapWidth_Reject_Sym)
    ->ArgNames({"width", "sym"})
    ->Args({7, 0})
    ->Args({7, 1})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({10, 0})
    ->Args({10, 1})
    ->Args({12, 0})
    ->Args({12, 1});

void BM_Enumerate_And_OfflineCheck(benchmark::State& state) {
  // End-to-end cost of the cross-validation pipeline: enumerate all
  // interleavings of 2 concurrent exchanges and offline-check each unique
  // history.
  for (auto _ : state) {
    ExchangerConfig c = make_exchanger(2, 1);
    c.config.record_history = true;
    ExploreOptions opts;
    opts.merge_states = false;
    opts.collect_terminals = true;
    Explorer ex(c.config, std::move(c.objects), opts);
    ExploreResult r = ex.run();
    CalChecker checker(c.spec);
    std::size_t ok = 0;
    for (const History& h : r.histories) {
      if (checker.check(h)) ++ok;
    }
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_Enumerate_And_OfflineCheck)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Experiment T-ENV: the price of running the shared objects/core/ bodies
// through RealEnv instead of hand-written atomics. One push + one pop per
// iteration, single thread, tracing off. The direct twin below is a
// verbatim transplant of the pre-unification CentralStack (the hand-
// written object this repo shipped before the env refactor): pointer-typed
// cells, an eager log() helper with its null-trace check, epoch guard,
// acquire load, acq_rel CAS, EBR retire. Any gap between the two series is
// the cost of routing the same algorithm through the env template layer.

/// The legacy hand-written central stack, copied from the pre-env sources.
class DirectCentralStack {
 public:
  struct Cell {
    std::int64_t data;
    Cell* next;
  };

  DirectCentralStack(runtime::EpochDomain& ebr, Symbol name,
                     runtime::TraceLog* trace)
      : ebr_(ebr), name_(name), trace_(trace) {}
  ~DirectCentralStack() {
    Cell* c = top_.load(std::memory_order_acquire);
    while (c != nullptr) {
      Cell* next = c->next;
      delete c;
      c = next;
    }
  }

  bool push(runtime::ThreadId tid, std::int64_t v) {
    static const Symbol kPush{"push"};
    runtime::EpochDomain::Guard guard(ebr_, tid);
    Cell* h = top_.load(std::memory_order_acquire);
    auto* n = new Cell{v, h};
    const bool ok =
        top_.compare_exchange_strong(h, n, std::memory_order_acq_rel);
    if (!ok) delete n;
    log(tid, kPush, Value::integer(v), Value::boolean(ok));
    return ok;
  }

  objects::PopResult pop(runtime::ThreadId tid) {
    static const Symbol kPop{"pop"};
    runtime::EpochDomain::Guard guard(ebr_, tid);
    Cell* h = top_.load(std::memory_order_acquire);
    if (h == nullptr) {
      log(tid, kPop, Value::unit(), Value::pair(false, 0));
      return {false, 0};
    }
    Cell* n = h->next;
    if (top_.compare_exchange_strong(h, n, std::memory_order_acq_rel)) {
      const std::int64_t v = h->data;
      ebr_.retire(tid, h);
      log(tid, kPop, Value::unit(), Value::pair(true, v));
      return {true, v};
    }
    log(tid, kPop, Value::unit(), Value::pair(false, 0));
    return {false, 0};
  }

 private:
  void log(runtime::ThreadId tid, Symbol method, Value arg, Value ret) {
    if (trace_ == nullptr) return;
    trace_->append(CaElement::singleton(
        name_, Operation::make(tid, name_, method, std::move(arg),
                               std::move(ret))));
  }

  runtime::EpochDomain& ebr_;
  Symbol name_;
  runtime::TraceLog* trace_;
  std::atomic<Cell*> top_{nullptr};
};

void BM_Env_StepOverhead_RealEnv(benchmark::State& state) {
  runtime::EpochDomain ebr;
  // CentralStack = exactly one core attempt per call, the same one-CAS
  // shape as the direct twin (TreiberStack would add its retry-policy
  // loads on top, which are not part of the env layer being measured).
  objects::CentralStack stack(ebr, Symbol{"S"}, /*trace=*/nullptr);
  std::int64_t v = 0;
  for (auto _ : state) {
    stack.push(0, ++v);
    benchmark::DoNotOptimize(stack.pop(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_Env_StepOverhead_RealEnv);

void BM_Env_StepOverhead_Direct(benchmark::State& state) {
  runtime::EpochDomain ebr;
  DirectCentralStack stack(ebr, Symbol{"S"}, /*trace=*/nullptr);
  std::int64_t v = 0;
  for (auto _ : state) {
    stack.push(0, ++v);
    benchmark::DoNotOptimize(stack.pop(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_Env_StepOverhead_Direct);

}  // namespace

