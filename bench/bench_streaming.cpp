// Experiment T-STREAM — cost of streaming (incremental) CAL checking from
// a live action feed vs the batch checker.
//
// Series:
//   * incremental consume+finish vs #actions (window 16) — the streaming
//     frontend's end-to-end throughput;
//   * one batch check of the same full history — the lower bound a
//     streaming checker competes against when verdict latency is free;
//   * batch re-check of every window prefix — what "bounded-latency
//     verdicts" cost *without* the incremental frontier (the quadratic
//     blowup the frontier-carrying design removes);
//   * incremental vs window size at fixed length — the latency/throughput
//     knob (small windows = tight violation-latency bound, more searches).
#include <benchmark/benchmark.h>

#include "cal/cal_checker.hpp"
#include "cal/engine/incremental.hpp"
#include "cal/specs/exchanger_spec.hpp"

namespace {

using namespace cal;  // NOLINT: bench file

Value iv(std::int64_t x) { return Value::integer(x); }

/// Valid exchanger run: pairs of adjacent threads overlap and swap; one in
/// four pairs times out. Deterministic by construction (same shape as the
/// T-CHECK generator).
History exchanger_history(std::size_t n_ops) {
  HistoryBuilder b;
  std::int64_t v = 1;
  ThreadId t = 1;
  for (std::size_t i = 0; i + 1 < n_ops; i += 2) {
    if (i % 8 == 6) {
      b.op(t, "E", "exchange", iv(v), Value::pair(false, v));
      b.op(t + 1, "E", "exchange", iv(v + 1), Value::pair(false, v + 1));
    } else {
      b.call(t, "E", "exchange", iv(v));
      b.call(t + 1, "E", "exchange", iv(v + 1));
      b.ret(t, Value::pair(true, v + 1));
      b.ret(t + 1, Value::pair(true, v));
    }
    v += 2;
    t = (t % 6) + 1;
  }
  return b.history();
}

void BM_Streaming_Incremental(benchmark::State& state) {
  const std::size_t n_ops = static_cast<std::size_t>(state.range(0));
  const History h = exchanger_history(n_ops);
  const ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  std::size_t windows = 0;
  std::size_t visited = 0;
  std::size_t retired = 0;
  for (auto _ : state) {
    engine::IncrementalOptions opts;
    opts.window = 16;
    engine::IncrementalChecker checker(spec, opts);
    checker.push(h);
    checker.finish();
    if (!checker.ok()) state.SkipWithError("stream rejected");
    benchmark::DoNotOptimize(checker.status().frontier_size);
    windows = checker.status().windows_checked;
    visited = checker.status().visited_states;
    retired = checker.status().retired_ops;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(h.actions().size()));
  state.counters["windows"] = static_cast<double>(windows);
  state.counters["visited"] = static_cast<double>(visited);
  state.counters["retired"] = static_cast<double>(retired);
}
BENCHMARK(BM_Streaming_Incremental)->Arg(64)->Arg(256)->Arg(1024);

void BM_Streaming_BatchFinal(benchmark::State& state) {
  const std::size_t n_ops = static_cast<std::size_t>(state.range(0));
  const History h = exchanger_history(n_ops);
  const ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  std::size_t visited = 0;
  for (auto _ : state) {
    CalChecker checker(spec);
    CalCheckResult r = checker.check(h);
    if (!r.ok) state.SkipWithError("history rejected");
    benchmark::DoNotOptimize(r.ok);
    visited = r.visited_states;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(h.actions().size()));
  state.counters["visited"] = static_cast<double>(visited);
}
BENCHMARK(BM_Streaming_BatchFinal)->Arg(64)->Arg(256)->Arg(1024);

void BM_Streaming_BatchPerWindow(benchmark::State& state) {
  const std::size_t n_ops = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kWindow = 16;
  const History h = exchanger_history(n_ops);
  const ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  for (auto _ : state) {
    History prefix;
    std::size_t since_check = 0;
    bool ok = true;
    for (const Action& a : h.actions()) {
      prefix.append(a);
      if (++since_check == kWindow) {
        since_check = 0;
        CalChecker checker(spec);
        ok = ok && checker.check(prefix).ok;
      }
    }
    if (since_check != 0) {
      CalChecker checker(spec);
      ok = ok && checker.check(prefix).ok;
    }
    if (!ok) state.SkipWithError("prefix rejected");
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(h.actions().size()));
}
BENCHMARK(BM_Streaming_BatchPerWindow)->Arg(64)->Arg(256);

void BM_Streaming_WindowSize(benchmark::State& state) {
  constexpr std::size_t kOps = 512;
  const std::size_t window = static_cast<std::size_t>(state.range(0));
  const History h = exchanger_history(kOps);
  const ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  std::size_t windows = 0;
  for (auto _ : state) {
    engine::IncrementalOptions opts;
    opts.window = window;
    engine::IncrementalChecker checker(spec, opts);
    checker.push(h);
    checker.finish();
    if (!checker.ok()) state.SkipWithError("stream rejected");
    benchmark::DoNotOptimize(checker.status().frontier_size);
    windows = checker.status().windows_checked;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(h.actions().size()));
  state.counters["windows"] = static_cast<double>(windows);
}
BENCHMARK(BM_Streaming_WindowSize)->Arg(4)->Arg(16)->Arg(64)->Arg(512);

}  // namespace

