// Experiment T-RECLAIM — the reclamation backends head-to-head on the
// same hot path. The Reclaimer interface turned memory reclamation into a
// policy axis of Env (epoch grace periods, hazard-pointer slots, tagged
// generations); this series prices that axis: the same Treiber-stack
// push/pop loop, identical except for which backend pins and retires the
// nodes.
//
// Regenerated series: throughput of a 50/50 push/pop workload vs thread
// count for
//   * ebr    — EpochDomain grace periods: no per-load bookkeeping, cost
//              concentrates in retire-time collection sweeps,
//   * hp     — hazard-pointer slots: a seq_cst store on every traversal
//              hop, reclamation scans the slot table,
//   * tagged — generation-tagged CAS: no protection writes at all, reuse
//              is immediate and the widened CAS carries the safety.
// Counters: ops/s, nodes reclaimed per second, and the retired-list
// high-water mark (the backend's memory backlog under load).
//
// Expected shape: ebr leads on raw throughput (empty read-side), hp pays
// its per-hop fence, tagged sits near ebr with a flat backlog because
// blocks recycle immediately. On single-core CI hosts the spreads
// compress; the backlog counters still separate the policies.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>

#include "objects/treiber_stack.hpp"
#include "runtime/reclaim/ebr_reclaimer.hpp"
#include "runtime/reclaim/hazard.hpp"
#include "runtime/reclaim/reclaimer.hpp"
#include "runtime/reclaim/tagged.hpp"
#include "runtime/thread_registry.hpp"

namespace {

using namespace cal::objects;  // NOLINT: bench file
using cal::Symbol;
namespace runtime = cal::runtime;

std::unique_ptr<runtime::Reclaimer> make_reclaimer(
    runtime::ReclaimPolicy policy) {
  switch (policy) {
    case runtime::ReclaimPolicy::kHp:
      return std::make_unique<runtime::HpReclaimer>();
    case runtime::ReclaimPolicy::kTagged:
      return std::make_unique<runtime::TaggedReclaimer>();
    case runtime::ReclaimPolicy::kEbr:
      break;
  }
  return std::make_unique<runtime::EbrReclaimer>();
}

void run_stack_workload(benchmark::State& state,
                        runtime::ReclaimPolicy policy) {
  static std::unique_ptr<runtime::Reclaimer> rec;
  static std::unique_ptr<TreiberStack> stack;
  if (state.thread_index() == 0) {
    rec = make_reclaimer(policy);
    stack = std::make_unique<TreiberStack>(*rec, Symbol{"RS"});
    // Pre-populate so pops do not spin on empty.
    for (int i = 1; i <= 4096; ++i) stack->push(0, i);
  }
  runtime::ThreadIdGuard tid;
  std::int64_t v = 1;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    stack->push(tid.tid(), v++);
    benchmark::DoNotOptimize(stack->pop(tid.tid()));
    ops += 2;
  }
  state.counters["ops/s"] =
      benchmark::Counter(static_cast<double>(ops), benchmark::Counter::kIsRate);
  if (state.thread_index() == 0) {
    const runtime::ReclaimStats s = rec->stats();
    state.counters["reclaimed/s"] = benchmark::Counter(
        static_cast<double>(s.reclaimed_total), benchmark::Counter::kIsRate);
    state.counters["retired_high_water"] =
        static_cast<double>(s.retired_high_water);
    stack.reset();
    rec.reset();
  }
}

void BM_Reclaim_StackChurn_Ebr(benchmark::State& state) {
  run_stack_workload(state, runtime::ReclaimPolicy::kEbr);
}
BENCHMARK(BM_Reclaim_StackChurn_Ebr)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void BM_Reclaim_StackChurn_Hp(benchmark::State& state) {
  run_stack_workload(state, runtime::ReclaimPolicy::kHp);
}
BENCHMARK(BM_Reclaim_StackChurn_Hp)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void BM_Reclaim_StackChurn_Tagged(benchmark::State& state) {
  run_stack_workload(state, runtime::ReclaimPolicy::kTagged);
}
BENCHMARK(BM_Reclaim_StackChurn_Tagged)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

}  // namespace
