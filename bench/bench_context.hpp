// Stamps the build type of the measured code into the benchmark JSON
// context. google-benchmark's own "library_build_type" field reports
// whether the *benchmark library* was compiled with NDEBUG — for a
// distro-packaged libbenchmark (Debian builds -O2 without -DNDEBUG) it
// is pinned to "debug" regardless of this repo's flags, so the scripts
// guard on "cal_build_type" instead (bench/run_benches.sh, CI).
#pragma once

#include <benchmark/benchmark.h>

namespace calbench {

inline void add_build_type_context() {
#ifdef NDEBUG
  benchmark::AddCustomContext("cal_build_type", "release");
#else
  benchmark::AddCustomContext("cal_build_type", "debug");
#endif
}

}  // namespace calbench
