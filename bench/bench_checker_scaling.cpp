// Experiment T-CHECK — cost of the contributed decision procedures: the
// CAL membership checker vs the classical Wing–Gong linearizability
// checker, as history length and overlap width grow.
//
// Series regenerated:
//   * CAL checker on exchanger histories vs #operations (valid histories
//     from the known-good generator used in the property tests);
//   * classical checker on stack histories of the same lengths;
//   * CAL checker vs overlap width (all operations concurrent — the
//     adversarial case for the subset enumeration);
//   * the Def. 5 agreement check (linear pass) as the baseline primitive.
#include <benchmark/benchmark.h>

#include <random>

#include "cal/agree.hpp"
#include "cal/cal_checker.hpp"
#include "cal/lin_checker.hpp"
#include "cal/specs/exchanger_spec.hpp"
#include "cal/specs/stack_spec.hpp"

namespace {

using namespace cal;  // NOLINT: bench file

Value iv(std::int64_t x) { return Value::integer(x); }

/// Valid exchanger run: pairs of adjacent threads overlap and swap; one in
/// four operations fails. Deterministic by construction.
History exchanger_history(std::size_t n_ops) {
  HistoryBuilder b;
  std::int64_t v = 1;
  ThreadId t = 1;
  for (std::size_t i = 0; i + 1 < n_ops; i += 2) {
    if (i % 8 == 6) {
      b.op(t, "E", "exchange", iv(v), Value::pair(false, v));
      b.op(t + 1, "E", "exchange", iv(v + 1), Value::pair(false, v + 1));
    } else {
      b.call(t, "E", "exchange", iv(v));
      b.call(t + 1, "E", "exchange", iv(v + 1));
      b.ret(t, Value::pair(true, v + 1));
      b.ret(t + 1, Value::pair(true, v));
    }
    v += 2;
    t = (t % 6) + 1;
  }
  return b.history();
}

/// Fully-overlapping failures: worst case for candidate-set enumeration.
History wide_overlap_history(std::size_t width) {
  HistoryBuilder b;
  for (ThreadId t = 1; t <= width; ++t) {
    b.call(t, "E", "exchange", iv(t));
  }
  for (ThreadId t = 1; t <= width; ++t) {
    b.ret(t, Value::pair(false, t));
  }
  return b.history();
}

/// Valid stack history: per-thread push-then-pop rounds, overlapping.
History stack_history(std::size_t n_ops) {
  HistoryBuilder b;
  std::int64_t v = 1;
  for (std::size_t i = 0; i + 1 < n_ops; i += 2) {
    const ThreadId t = static_cast<ThreadId>(i / 2 % 3 + 1);
    b.op(t, "S", "push", iv(v), Value::boolean(true));
    b.op(t, "S", "pop", Value::unit(), Value::pair(true, v));
    ++v;
  }
  return b.history();
}

void BM_CalChecker_ExchangerHistory(benchmark::State& state) {
  const History h = exchanger_history(static_cast<std::size_t>(state.range(0)));
  ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  CalChecker checker(spec);
  std::size_t visited = 0;
  for (auto _ : state) {
    CalCheckResult r = checker.check(h);
    benchmark::DoNotOptimize(r.ok);
    visited = r.visited_states;
  }
  state.counters["ops"] = static_cast<double>(h.operations().size());
  state.counters["visited"] = static_cast<double>(visited);
}
BENCHMARK(BM_CalChecker_ExchangerHistory)
    ->ArgName("ops")
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128);

/// Copies a check's compression counters onto the benchmark series (T-MEM:
/// visited-set bytes is the headline; cache/pruning explain the speedups).
void record_compression(benchmark::State& state, const CalCheckResult& r) {
  state.counters["visited"] = static_cast<double>(r.visited_states);
  state.counters["visited_bytes"] = static_cast<double>(r.visited_bytes);
  state.counters["step_hits"] = static_cast<double>(r.step_cache_hits);
  state.counters["step_misses"] = static_cast<double>(r.step_cache_misses);
  state.counters["pruned"] = static_cast<double>(r.pruned_subsets);
}

void BM_CalChecker_OverlapWidth(benchmark::State& state) {
  // threads=1 is the sequential engine (the historical series); higher
  // counts exercise the work-stealing pool on the same workload — the
  // speedup claim of the parallel-search PR is threads=8 vs threads=1 on
  // the wide widths. exact=1 stores full visited keys
  // (CalCheckOptions::exact_visited) instead of 128-bit fingerprints —
  // the T-MEM before/after axis.
  const History h = wide_overlap_history(static_cast<std::size_t>(state.range(0)));
  ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  CalCheckOptions opts;
  opts.threads = static_cast<std::size_t>(state.range(1));
  opts.exact_visited = state.range(2) != 0;
  CalChecker checker(spec, opts);
  CalCheckResult r;
  for (auto _ : state) {
    r = checker.check(h);
    benchmark::DoNotOptimize(r.ok);
  }
  record_compression(state, r);
}
BENCHMARK(BM_CalChecker_OverlapWidth)
    ->ArgNames({"width", "threads", "exact"})
    ->Args({2, 1, 0})
    ->Args({4, 1, 0})
    ->Args({6, 1, 0})
    ->Args({6, 1, 1})
    ->Args({8, 1, 0})
    ->Args({8, 1, 1})
    ->Args({10, 1, 0})
    ->Args({10, 1, 1})
    ->Args({8, 2, 0})
    ->Args({8, 8, 0})
    ->Args({10, 2, 0})
    ->Args({10, 8, 0})
    ->Args({12, 1, 0})
    ->Args({12, 1, 1})
    ->Args({12, 8, 0});

void BM_CalChecker_OverlapWidth_Reject(benchmark::State& state) {
  // Rejection needs full exhaustion — no early-witness cancellation — so
  // this is the purest parallel-search scaling series, and the one where
  // the visited set peaks (T-MEM's headline numbers).
  History h = wide_overlap_history(static_cast<std::size_t>(state.range(0)));
  std::vector<Action> actions = h.actions();
  actions.back().payload = Value::pair(true, 424242);  // impossible swap
  const History bad{std::move(actions)};
  ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  CalCheckOptions opts;
  opts.threads = static_cast<std::size_t>(state.range(1));
  opts.exact_visited = state.range(2) != 0;
  CalChecker checker(spec, opts);
  CalCheckResult r;
  for (auto _ : state) {
    r = checker.check(bad);
    benchmark::DoNotOptimize(r.ok);
  }
  record_compression(state, r);
}
BENCHMARK(BM_CalChecker_OverlapWidth_Reject)
    ->ArgNames({"width", "threads", "exact"})
    ->Args({7, 1, 0})
    ->Args({7, 1, 1})
    ->Args({7, 2, 0})
    ->Args({7, 8, 0})
    ->Args({8, 1, 0})
    ->Args({8, 1, 1})
    ->Args({8, 2, 0})
    ->Args({8, 8, 0});

void BM_LinChecker_StackHistory(benchmark::State& state) {
  const History h = stack_history(static_cast<std::size_t>(state.range(0)));
  StackSpec spec(Symbol{"S"});
  LinChecker checker(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.check(h).ok);
  }
}
BENCHMARK(BM_LinChecker_StackHistory)
    ->ArgName("ops")
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128);

void BM_CalCheckerViaAdapter_StackHistory(benchmark::State& state) {
  // The generality tax: same histories, CAL checker through SeqAsCaSpec.
  const History h = stack_history(static_cast<std::size_t>(state.range(0)));
  auto seq = std::make_shared<StackSpec>(Symbol{"S"});
  SeqAsCaSpec spec(seq);
  CalChecker checker(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.check(h).ok);
  }
}
BENCHMARK(BM_CalCheckerViaAdapter_StackHistory)
    ->ArgName("ops")
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128);

void BM_Agree_Def5(benchmark::State& state) {
  const History h = exchanger_history(static_cast<std::size_t>(state.range(0)));
  ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  CalChecker checker(spec);
  const CaTrace witness = *checker.check(h).witness;
  for (auto _ : state) {
    benchmark::DoNotOptimize(agrees_with(h, witness).agrees);
  }
}
BENCHMARK(BM_Agree_Def5)->ArgName("ops")->Arg(16)->Arg(64)->Arg(256);

void BM_CalChecker_RejectsCorrupted(benchmark::State& state) {
  // Rejection cost: corrupt the last successful response; the checker must
  // exhaust the search space to answer "no".
  History h = exchanger_history(static_cast<std::size_t>(state.range(0)));
  std::vector<Action> actions = h.actions();
  for (auto it = actions.rbegin(); it != actions.rend(); ++it) {
    if (it->is_respond() && it->payload.kind() == Value::Kind::kPair &&
        it->payload.pair_ok()) {
      it->payload = Value::pair(true, 999999);
      break;
    }
  }
  const History bad{std::move(actions)};
  ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  CalChecker checker(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.check(bad).ok);
  }
}
BENCHMARK(BM_CalChecker_RejectsCorrupted)
    ->ArgName("ops")
    ->Arg(8)
    ->Arg(16)
    ->Arg(32);

}  // namespace

