// Experiment T-PQ — the polynomial order checker vs the generic engine on
// priority-queue histories as overlap width grows.
//
// The workload is the adversarial shape for subset enumeration: w inserts
// with distinct values, all mutually concurrent, followed by w deleteMins,
// again all mutually concurrent. The engine's search is exponential in w
// (distinct values defeat the symmetry reduction), while the order checker
// resolves the same instance with one greedy ascending sweep — so the
// series below cross from "≥10× at the largest width the engine can take"
// to "milliseconds at widths the engine cannot finish at any budget".
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "cal/cal_checker.hpp"
#include "cal/history.hpp"
#include "cal/specs/priority_queue_spec.hpp"

namespace {

using namespace cal;  // NOLINT: bench file

const Symbol kP{"P"};
const Symbol kInsert{"insert"};
const Symbol kDeleteMin{"deleteMin"};

/// The adversarial accept instance: w inserts of 0..w-1 all stay open
/// while a sequential run of w deleteMins returns the values in
/// DESCENDING order; the inserts respond only afterwards. Linearizable —
/// insert(w-1-k) linearizes just before the k-th removal — but the DFS
/// must discover that each removal admits exactly one insert subset
/// (fire only the yet-largest value), so its natural insertion orders all
/// dead-end deep: visited states grow exponentially in w even though the
/// verdict is "yes". The order checker resolves the same instance with
/// one ascending sweep.
History stair_pq_history(std::size_t width) {
  History h;
  for (std::size_t i = 0; i < width; ++i) {
    h.invoke(static_cast<ThreadId>(i + 1), kP, kInsert,
             Value::integer(static_cast<std::int64_t>(i)));
  }
  const auto remover = static_cast<ThreadId>(width + 1);
  for (std::size_t i = 0; i < width; ++i) {
    h.invoke(remover, kP, kDeleteMin);
    h.respond(remover, kP, kDeleteMin,
              Value::pair(true, static_cast<std::int64_t>(width - 1 - i)));
  }
  for (std::size_t i = 0; i < width; ++i) {
    h.respond(static_cast<ThreadId>(i + 1), kP, kInsert,
              Value::boolean(true));
  }
  return h;
}

/// w fully-overlapping inserts of 0..w-1, then w fully-overlapping
/// deleteMins returning the values in ascending order. Linearizable, and
/// every operation overlaps every other in its phase — the shape that
/// exercises the order checker's forced zones (one per matched value).
History wide_pq_history(std::size_t width) {
  History h;
  for (std::size_t i = 0; i < width; ++i) {
    h.invoke(static_cast<ThreadId>(i + 1), kP, kInsert,
             Value::integer(static_cast<std::int64_t>(i)));
  }
  for (std::size_t i = 0; i < width; ++i) {
    h.respond(static_cast<ThreadId>(i + 1), kP, kInsert,
              Value::boolean(true));
  }
  for (std::size_t i = 0; i < width; ++i) {
    h.invoke(static_cast<ThreadId>(i + 1), kP, kDeleteMin);
  }
  for (std::size_t i = 0; i < width; ++i) {
    h.respond(static_cast<ThreadId>(i + 1), kP, kDeleteMin,
              Value::pair(true, static_cast<std::int64_t>(i)));
  }
  return h;
}

/// Same instance with the last removal returning a never-inserted value:
/// the rejection case, where the engine must exhaust its search space.
History wide_pq_history_bad(std::size_t width) {
  std::vector<Action> actions = wide_pq_history(width).actions();
  actions.back().payload = Value::pair(true, 999999);
  return History(std::move(actions));
}

void record_order(benchmark::State& state, const CalCheckResult& r) {
  state.counters["order_checked"] = r.order_checked ? 1.0 : 0.0;
  state.counters["values"] = static_cast<double>(r.order_values);
  state.counters["zones"] = static_cast<double>(r.order_zones);
  state.counters["bumps"] = static_cast<double>(r.order_bumps);
}

/// Headline series: the spec-specialized polynomial path on the
/// staircase instances. Widths run far past anything the engine can
/// enumerate; each check is a sort plus a linear sweep over a merged
/// interval map.
void BM_PqChecker_Width(benchmark::State& state) {
  const History h = stair_pq_history(static_cast<std::size_t>(state.range(0)));
  PriorityQueueCaSpec spec(kP);
  CalChecker checker(spec);
  CalCheckResult r;
  for (auto _ : state) {
    r = checker.check(h);
    benchmark::DoNotOptimize(r.ok);
  }
  record_order(state, r);
}
BENCHMARK(BM_PqChecker_Width)
    ->ArgName("width")
    ->Arg(4)
    ->Arg(6)
    ->Arg(8)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(10000);

/// Order path on the fully-overlapping family: every matched value builds
/// a forced-presence zone, so this series charts the interval-map cost
/// (counters: values == zones == width).
void BM_PqChecker_Width_Overlap(benchmark::State& state) {
  const History h = wide_pq_history(static_cast<std::size_t>(state.range(0)));
  PriorityQueueCaSpec spec(kP);
  CalChecker checker(spec);
  CalCheckResult r;
  for (auto _ : state) {
    r = checker.check(h);
    benchmark::DoNotOptimize(r.ok);
  }
  record_order(state, r);
}
BENCHMARK(BM_PqChecker_Width_Overlap)
    ->ArgName("width")
    ->Arg(8)
    ->Arg(64)
    ->Arg(1024)
    ->Arg(10000);

/// Rejection on the order path: same sweep cost — no exhaustion penalty,
/// unlike the engine, for which rejection is the worst case.
void BM_PqChecker_Width_Reject(benchmark::State& state) {
  const History h =
      wide_pq_history_bad(static_cast<std::size_t>(state.range(0)));
  PriorityQueueCaSpec spec(kP);
  CalChecker checker(spec);
  CalCheckResult r;
  for (auto _ : state) {
    r = checker.check(h);
    benchmark::DoNotOptimize(r.ok);
  }
  record_order(state, r);
}
BENCHMARK(BM_PqChecker_Width_Reject)
    ->ArgName("width")
    ->Arg(8)
    ->Arg(64)
    ->Arg(1024)
    ->Arg(10000);

/// The generic engine on the same staircase instances (--no-order-check
/// path). The visited set grows exponentially in the width; widths stop
/// where a Release build still finishes a repetition in reasonable time.
/// The speedup claim is order vs engine at the largest width listed here.
void BM_PqChecker_Width_Engine(benchmark::State& state) {
  const History h = stair_pq_history(static_cast<std::size_t>(state.range(0)));
  PriorityQueueCaSpec spec(kP);
  CalCheckOptions opts;
  opts.order_check = false;
  CalChecker checker(spec, opts);
  CalCheckResult r;
  for (auto _ : state) {
    r = checker.check(h);
    benchmark::DoNotOptimize(r.ok);
  }
  state.counters["visited"] = static_cast<double>(r.visited_states);
  state.counters["order_checked"] = r.order_checked ? 1.0 : 0.0;
}
BENCHMARK(BM_PqChecker_Width_Engine)
    ->ArgName("width")
    ->Arg(4)
    ->Arg(6)
    ->Arg(8)
    ->Arg(10)
    ->Arg(12)
    ->Arg(14)
    ->Unit(benchmark::kMillisecond);

/// Engine rejection: full exhaustion of the search space, the honest
/// baseline for the order path's constant-shape rejection cost.
void BM_PqChecker_Width_Engine_Reject(benchmark::State& state) {
  const History h =
      wide_pq_history_bad(static_cast<std::size_t>(state.range(0)));
  PriorityQueueCaSpec spec(kP);
  CalCheckOptions opts;
  opts.order_check = false;
  CalChecker checker(spec, opts);
  CalCheckResult r;
  for (auto _ : state) {
    r = checker.check(h);
    benchmark::DoNotOptimize(r.ok);
  }
  state.counters["visited"] = static_cast<double>(r.visited_states);
}
BENCHMARK(BM_PqChecker_Width_Engine_Reject)
    ->ArgName("width")
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Arg(5);

}  // namespace

