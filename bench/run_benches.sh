#!/usr/bin/env bash
# Runs the state-compression benchmark series (T-MEM / T-CHECK) and writes
# google-benchmark's aggregate JSON — median ns/op plus the visited-set
# counters (visited, visited_bytes, step_hits, step_misses, pruned) — to
# BENCH_state_compression.json in the repo root.
#
# Environment overrides:
#   BUILD_DIR  build tree containing bench/bench_checker_scaling
#              (default: build)
#   REPS       benchmark repetitions per series; the JSON keeps only the
#              mean/median/stddev aggregates (default: 5)
#   FILTER     benchmark name regex (default: the CalChecker overlap-width
#              series, the ones the compression targets)
#   OUT        output JSON path (default: BENCH_state_compression.json next
#              to this script's repo root)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"
REPS="${REPS:-5}"
FILTER="${FILTER:-BM_CalChecker_OverlapWidth}"
OUT="${OUT:-$ROOT/BENCH_state_compression.json}"

BIN="$BUILD_DIR/bench/bench_checker_scaling"
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built (cmake -B \"$BUILD_DIR\" -S \"$ROOT\" && cmake --build \"$BUILD_DIR\" -j)" >&2
  exit 1
fi

"$BIN" \
  --benchmark_filter="$FILTER" \
  --benchmark_repetitions="$REPS" \
  --benchmark_report_aggregates_only=true \
  --benchmark_out_format=json \
  --benchmark_out="$OUT"

echo "wrote $OUT"
