#!/usr/bin/env bash
# Runs the checked-in benchmark series and writes google-benchmark's
# aggregate JSON (median ns/op plus per-series counters):
#
#   * T-MEM / T-CHECK — state-compression series (bench_checker_scaling)
#     → BENCH_state_compression.json
#   * T-STREAM — streaming incremental checker vs batch (bench_streaming)
#     → BENCH_streaming.json
#   * T-ENV — RealEnv abstraction cost vs the direct-atomic twin
#     (bench_model_check, BM_Env_StepOverhead_*) → BENCH_env_unification.json
#   * T-POR — partial-order + thread-symmetry reduction: the explorer
#     {por,symmetry} grid and the checker symmetry overlap-width series
#     (bench_model_check, BM_Explore_Reduction + BM_CalChecker_OverlapWidth
#     _Sym/_Reject_Sym) → BENCH_por.json
#   * T-PQ — polynomial order checker vs the enumerative engine on
#     priority-queue staircase/overlap widths (bench_pq) → BENCH_pq.json
#   * T-WMM — the memory-model axis: annotated vs seq_cst-forced RealEnv
#     on the exchanger/stack hot paths, and explorer SC-vs-TSO state
#     counts (bench_weak_memory) → BENCH_weak_memory.json
#   * T-RECLAIM — the reclamation axis: ebr/hp/tagged backends head-to-head
#     on the Treiber-stack churn path (bench_reclaim) → BENCH_reclaim.json
#
# Benches are built (and, when missing, configured) in a dedicated Release
# tree: every checked-in number must come from optimized code, and each
# run is verified against the cal_build_type context stamp (see
# bench/bench_context.hpp) — the script fails if a binary reports
# anything but "release", which is how debug numbers once slipped into
# BENCH_por.json. (google-benchmark's own library_build_type field
# reflects the NDEBUG state of the *benchmark library* — a distro
# libbenchmark package pins it to "debug" regardless of this repo's
# flags, so it cannot guard the measured code.)
#
# Environment overrides:
#   BUILD_DIR      build tree containing the bench binaries (default:
#                  build-bench, configured with CMAKE_BUILD_TYPE=Release;
#                  if you point this at another tree, its binaries must
#                  still report a release build)
#   REPS           benchmark repetitions per series; the JSON keeps only the
#                  mean/median/stddev aggregates (default: 5)
#   FILTER         state-compression benchmark name regex (default: the
#                  CalChecker overlap-width series)
#   OUT            state-compression output JSON path (default:
#                  BENCH_state_compression.json in the repo root)
#   STREAM_FILTER  streaming benchmark name regex (default: BM_Streaming)
#   STREAM_OUT     streaming output JSON path (default: BENCH_streaming.json
#                  in the repo root)
#   ENV_FILTER     env-overhead benchmark name regex (default:
#                  BM_Env_StepOverhead)
#   ENV_OUT        env-overhead output JSON path (default:
#                  BENCH_env_unification.json in the repo root)
#   POR_FILTER     reduction benchmark name regex (default: the T-POR
#                  explorer {por,symmetry} grid plus the checker symmetry
#                  overlap-width series)
#   POR_OUT        reduction output JSON path (default: BENCH_por.json in
#                  the repo root)
#   PQ_FILTER      priority-queue benchmark name regex (default:
#                  BM_PqChecker — the order-path widths, both reject
#                  series, and the engine baseline)
#   PQ_OUT         priority-queue output JSON path (default: BENCH_pq.json
#                  in the repo root)
#   WMM_FILTER     weak-memory benchmark name regex (default:
#                  BM_WeakMemory — runtime hot paths and explorer counts)
#   WMM_OUT        weak-memory output JSON path (default:
#                  BENCH_weak_memory.json in the repo root)
#   RECLAIM_FILTER reclamation benchmark name regex (default:
#                  BM_Reclaim — all three backends on the stack churn)
#   RECLAIM_OUT    reclamation output JSON path (default:
#                  BENCH_reclaim.json in the repo root)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build-bench}"
REPS="${REPS:-5}"
FILTER="${FILTER:-BM_CalChecker_OverlapWidth}"
OUT="${OUT:-$ROOT/BENCH_state_compression.json}"
STREAM_FILTER="${STREAM_FILTER:-BM_Streaming}"
STREAM_OUT="${STREAM_OUT:-$ROOT/BENCH_streaming.json}"
ENV_FILTER="${ENV_FILTER:-BM_Env_StepOverhead}"
ENV_OUT="${ENV_OUT:-$ROOT/BENCH_env_unification.json}"
POR_FILTER="${POR_FILTER:-BM_Explore_Reduction|BM_CalChecker_OverlapWidth_Sym|BM_CalChecker_OverlapWidth_Reject_Sym}"
POR_OUT="${POR_OUT:-$ROOT/BENCH_por.json}"
PQ_FILTER="${PQ_FILTER:-BM_PqChecker}"
PQ_OUT="${PQ_OUT:-$ROOT/BENCH_pq.json}"
WMM_FILTER="${WMM_FILTER:-BM_WeakMemory}"
WMM_OUT="${WMM_OUT:-$ROOT/BENCH_weak_memory.json}"
RECLAIM_FILTER="${RECLAIM_FILTER:-BM_Reclaim}"
RECLAIM_OUT="${RECLAIM_OUT:-$ROOT/BENCH_reclaim.json}"

BENCH_TARGETS=(bench_checker_scaling bench_streaming bench_model_check bench_pq
  bench_weak_memory bench_reclaim)

ensure_built() {
  if [[ ! -f "$BUILD_DIR/CMakeCache.txt" ]]; then
    cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
  fi
  cmake --build "$BUILD_DIR" -j --target "${BENCH_TARGETS[@]}"
}

# Refuses the series unless the binary was compiled optimized: a
# debug-built bench writes "cal_build_type": "debug" into its JSON
# context (bench/bench_context.hpp), and such numbers must never be
# checked in.
check_release() {
  local out="$1"
  local type
  type="$(sed -n 's/.*"cal_build_type": *"\([^"]*\)".*/\1/p' "$out" | head -1)"
  if [[ "$type" != "release" ]]; then
    echo "error: $out reports cal_build_type=\"${type:-missing}\" (want \"release\");" >&2
    echo "       rebuild the benches with CMAKE_BUILD_TYPE=Release" >&2
    exit 1
  fi
}

run_series() {
  local bin="$1" filter="$2" out="$3"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (cmake -B \"$BUILD_DIR\" -S \"$ROOT\" -DCMAKE_BUILD_TYPE=Release && cmake --build \"$BUILD_DIR\" -j)" >&2
    exit 1
  fi
  "$bin" \
    --benchmark_filter="$filter" \
    --benchmark_repetitions="$REPS" \
    --benchmark_report_aggregates_only=true \
    --benchmark_out_format=json \
    --benchmark_out="$out"
  check_release "$out"
  echo "wrote $out"
}

ensure_built
run_series "$BUILD_DIR/bench/bench_checker_scaling" "$FILTER" "$OUT"
run_series "$BUILD_DIR/bench/bench_streaming" "$STREAM_FILTER" "$STREAM_OUT"
run_series "$BUILD_DIR/bench/bench_model_check" "$ENV_FILTER" "$ENV_OUT"
run_series "$BUILD_DIR/bench/bench_model_check" "$POR_FILTER" "$POR_OUT"
run_series "$BUILD_DIR/bench/bench_pq" "$PQ_FILTER" "$PQ_OUT"
run_series "$BUILD_DIR/bench/bench_weak_memory" "$WMM_FILTER" "$WMM_OUT"
run_series "$BUILD_DIR/bench/bench_reclaim" "$RECLAIM_FILTER" "$RECLAIM_OUT"
