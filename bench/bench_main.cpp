// Shared main for the bench binaries (every cal_bench target without
// NOMAIN): identical to BENCHMARK_MAIN() plus the cal_build_type
// context stamp — see bench_context.hpp for why the stamp exists.
#include <benchmark/benchmark.h>

#include "bench_context.hpp"

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  calbench::add_build_type_context();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
