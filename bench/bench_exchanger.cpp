// Experiment T-EXCH — exchanger and elimination-array behavior: pairing
// success rate and throughput vs thread count and array width K.
//
// Regenerates the motivation for the elimination array (§2.2: "implemented
// as an array of exchangers to reduce contention"): a single exchanger slot
// saturates — concurrent threads collide on one offer slot — while wider
// arrays spread offers but pair less often per probe. The interesting
// series is success_frac across (threads, K).
#include <benchmark/benchmark.h>

#include "objects/elim_array.hpp"
#include "runtime/thread_registry.hpp"

namespace {

using namespace cal::objects;  // NOLINT: bench file
using cal::Symbol;
namespace runtime = cal::runtime;

void BM_ExchangerSingle(benchmark::State& state) {
  static runtime::EpochDomain* ebr = nullptr;
  static Exchanger* ex = nullptr;
  if (state.thread_index() == 0) {
    ebr = new runtime::EpochDomain();
    ex = new Exchanger(*ebr, Symbol{"E"});
  }
  runtime::ThreadIdGuard tid;
  std::int64_t v = 1;
  std::uint64_t ops = 0;
  std::uint64_t ok = 0;
  for (auto _ : state) {
    ExchangeResult r = ex->exchange(tid.tid(), v++, /*spins=*/256);
    if (r.ok) ++ok;
    ++ops;
  }
  state.counters["xchg/s"] =
      benchmark::Counter(static_cast<double>(ops), benchmark::Counter::kIsRate);
  state.counters["success_frac"] = benchmark::Counter(
      static_cast<double>(ok) / static_cast<double>(ops ? ops : 1),
      benchmark::Counter::kAvgThreads);
  if (state.thread_index() == 0) {
    delete ex;
    delete ebr;
    ex = nullptr;
    ebr = nullptr;
  }
}
BENCHMARK(BM_ExchangerSingle)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void BM_ElimArray(benchmark::State& state) {
  static runtime::EpochDomain* ebr = nullptr;
  static ElimArray* ar = nullptr;
  if (state.thread_index() == 0) {
    ebr = new runtime::EpochDomain();
    ar = new ElimArray(*ebr, Symbol{"AR"},
                       static_cast<std::size_t>(state.range(0)));
  }
  runtime::ThreadIdGuard tid;
  std::int64_t v = 1;
  std::uint64_t ops = 0;
  std::uint64_t ok = 0;
  for (auto _ : state) {
    ExchangeResult r = ar->exchange(tid.tid(), v++, /*spins=*/256);
    if (r.ok) ++ok;
    ++ops;
  }
  state.counters["xchg/s"] =
      benchmark::Counter(static_cast<double>(ops), benchmark::Counter::kIsRate);
  state.counters["success_frac"] = benchmark::Counter(
      static_cast<double>(ok) / static_cast<double>(ops ? ops : 1),
      benchmark::Counter::kAvgThreads);
  if (state.thread_index() == 0) {
    delete ar;
    delete ebr;
    ar = nullptr;
    ebr = nullptr;
  }
}
BENCHMARK(BM_ElimArray)
    ->ArgName("K")
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// Instrumentation overhead ablation: the auxiliary 𝒯 logging the paper's
// proof technique adds (DESIGN.md calls this out as a design choice —
// instrumentation is optional at construction).
void BM_ExchangerInstrumented(benchmark::State& state) {
  static runtime::EpochDomain* ebr = nullptr;
  static runtime::TraceLog* trace = nullptr;
  static Exchanger* ex = nullptr;
  if (state.thread_index() == 0) {
    ebr = new runtime::EpochDomain();
    trace = new runtime::TraceLog(1 << 22);
    ex = new Exchanger(*ebr, Symbol{"E"}, trace);
  }
  runtime::ThreadIdGuard tid;
  std::int64_t v = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex->exchange(tid.tid(), v++, 64));
  }
  if (state.thread_index() == 0) {
    state.counters["trace_elems"] =
        static_cast<double>(trace->size());
    delete ex;
    delete trace;
    delete ebr;
    ex = nullptr;
    trace = nullptr;
    ebr = nullptr;
  }
}
BENCHMARK(BM_ExchangerInstrumented)->Threads(2)->Threads(4)->UseRealTime();

}  // namespace

