// Experiment T-WMM — the memory-model axis, both directions:
//
//   * Runtime: the annotated core bodies (exchanger, the elimination
//     stack's central Treiber path) through RealEnv with their R/G-weakest
//     orders vs the same bodies with every yield op forced to seq_cst.
//     On x86 the mapping collapses for CAS-dominated paths (acq_rel and
//     seq_cst RMWs are both lock-prefixed; acquire and seq_cst loads are
//     both plain movs), so the expected delta here is ~0 — the honest
//     baseline the EXPERIMENTS.md entry documents. The annotations buy
//     machine-checked *permission* (the TSO exploration proves them
//     sufficient) and real savings only on weakly-ordered ISAs.
//
//   * Model checking: the cost of taking the weaker model seriously —
//     explorer state/transition counts under SC vs TSO for an annotated
//     body (identical: buffers stay empty) and for the store-buffering
//     litmus whose relaxed stores actually buffer (the flush-transition
//     blowup).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "cal/specs/exchanger_spec.hpp"
#include "objects/core/exchanger_core.hpp"
#include "objects/core/stack_core.hpp"
#include "objects/real_env.hpp"
#include "runtime/reclaim/ebr_reclaimer.hpp"
#include "runtime/thread_registry.hpp"
#include "sched/explorer.hpp"
#include "sched/sim_env.hpp"
#include "sched/sim_objects.hpp"

namespace {

using namespace cal::objects;  // NOLINT: bench file
using cal::Symbol;
using cal::Value;
namespace core = cal::objects::core;
namespace runtime = cal::runtime;
namespace sched = cal::sched;

/// RealEnv with the body's order annotations erased: every yield op runs
/// seq_cst, the strongest (pre-annotation) behavior. Same inlining shape
/// as RealEnv so the comparison isolates the memory orders.
class SeqCstEnv {
 public:
  SeqCstEnv(runtime::Reclaimer* rec, runtime::ThreadId tid,
            runtime::TraceLog* trace) noexcept
      : env_(rec, tid, trace) {}

  Word load(Word b, Word o, MemOrder /*mo*/ = MemOrder::kSeqCst) const
      noexcept {
    return env_.load(b, o, MemOrder::kSeqCst);
  }
  void store(Word b, Word o, Word v,
             MemOrder /*mo*/ = MemOrder::kSeqCst) const noexcept {
    env_.store(b, o, v, MemOrder::kSeqCst);
  }
  bool cas(Word b, Word o, Word expected, Word desired,
           MemOrder /*mo*/ = MemOrder::kSeqCst) const noexcept {
    return env_.cas(b, o, expected, desired, MemOrder::kSeqCst);
  }
  Word protect(Word b, Word o, MemOrder /*mo*/ = MemOrder::kSeqCst) const
      noexcept {
    return env_.protect(b, o, MemOrder::kSeqCst);
  }
  void release() const noexcept { env_.release(); }
  bool validate(Word b, Word o) const noexcept { return env_.validate(b, o); }
  ReclaimPolicy reclaim_policy() const noexcept {
    return env_.reclaim_policy();
  }
  Word choose(Word n) const noexcept { return env_.choose(n); }
  Word alloc(Word cells) const { return env_.alloc(cells); }
  Word load_frozen(Word b, Word o) const noexcept {
    return env_.load_frozen(b, o);
  }
  void store_private(Word b, Word o, Word v) const noexcept {
    env_.store_private(b, o, v);
  }
  void retire(Word b, Word c) const { env_.retire(b, c); }
  void retire_grace(Word b, Word c) const { env_.retire_grace(b, c); }
  void free_private(Word b, Word c) const { env_.free_private(b, c); }
  void await(Word b, Word o, unsigned s) const noexcept {
    env_.await(b, o, s);
  }
  template <typename F>
  void emit(F&& make) const {
    env_.emit(std::forward<F>(make));
  }
  void label(std::int32_t pc) const noexcept { env_.label(pc); }
  void note(std::size_t r, Word v) const noexcept { env_.note(r, v); }
  void event(unsigned b) const noexcept { env_.event(b); }

 private:
  RealEnv env_;
};

// ------------------------------------------------------------------ //
// Runtime hot paths: annotated vs forced-seq_cst.

struct ExchangerCells {
  std::atomic<Word> g{0};
  std::atomic<Word> fail[core::kOfferCells] = {};
};

template <class Env>
void BM_WeakMemory_Exchanger(benchmark::State& state) {
  static runtime::EbrReclaimer* rec = nullptr;
  static ExchangerCells* cells = nullptr;
  static core::ExchangerRefs refs;
  if (state.thread_index() == 0) {
    rec = new runtime::EbrReclaimer();
    cells = new ExchangerCells();
    refs.g = RealEnv::ref(&cells->g);
    refs.fail = RealEnv::ref(cells->fail);
  }
  runtime::ThreadIdGuard tid;
  std::int64_t v = 1;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    runtime::Reclaimer::Guard guard(*rec, tid.tid());
    Env env(rec, tid.tid(), /*trace=*/nullptr);
    benchmark::DoNotOptimize(core::exchange(env, refs, Symbol{"E"},
                                            Symbol{"exchange"}, tid.tid(),
                                            v++, /*spins=*/64));
    ++ops;
  }
  state.counters["xchg/s"] =
      benchmark::Counter(static_cast<double>(ops), benchmark::Counter::kIsRate);
  if (state.thread_index() == 0) {
    delete cells;
    delete rec;
    cells = nullptr;
    rec = nullptr;
  }
}
BENCHMARK_TEMPLATE(BM_WeakMemory_Exchanger, RealEnv)
    ->Name("BM_WeakMemory_Exchanger_Annotated")
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();
BENCHMARK_TEMPLATE(BM_WeakMemory_Exchanger, SeqCstEnv)
    ->Name("BM_WeakMemory_Exchanger_SeqCst")
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// The elimination stack's central path: push/pop attempts on one shared
// Treiber top (each thread alternates, retrying like TreiberStack does).
template <class Env>
void BM_WeakMemory_StackCore(benchmark::State& state) {
  static runtime::EbrReclaimer* rec = nullptr;
  static std::atomic<Word>* top = nullptr;
  static core::StackRefs refs;
  if (state.thread_index() == 0) {
    rec = new runtime::EbrReclaimer();
    top = new std::atomic<Word>(0);
    refs.top = RealEnv::ref(top);
  }
  runtime::ThreadIdGuard tid;
  std::int64_t v = 1;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    runtime::Reclaimer::Guard guard(*rec, tid.tid());
    Env env(rec, tid.tid(), /*trace=*/nullptr);
    if ((ops & 1) == 0) {
      while (!core::stack_push_attempt(env, refs, Symbol{"S"}, tid.tid(),
                                       v++)) {
      }
    } else {
      core::StackPopOutcome r;
      do {
        r = core::stack_pop_attempt(env, refs, Symbol{"S"}, tid.tid());
      } while (r.kind == core::StackPop::kLost);
      benchmark::DoNotOptimize(r);
    }
    ++ops;
  }
  state.counters["ops/s"] =
      benchmark::Counter(static_cast<double>(ops), benchmark::Counter::kIsRate);
  if (state.thread_index() == 0) {
    // Drain whatever the pushes left behind before freeing the top cell.
    runtime::ThreadIdGuard drain_tid;
    RealEnv env(rec, drain_tid.tid(), nullptr);
    core::StackPopOutcome r;
    do {
      runtime::Reclaimer::Guard guard(*rec, drain_tid.tid());
      r = core::stack_pop_attempt(env, refs, Symbol{"S"}, drain_tid.tid());
    } while (r.kind != core::StackPop::kEmpty);
    delete top;
    delete rec;
    top = nullptr;
    rec = nullptr;
  }
}
BENCHMARK_TEMPLATE(BM_WeakMemory_StackCore, RealEnv)
    ->Name("BM_WeakMemory_StackCore_Annotated")
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();
BENCHMARK_TEMPLATE(BM_WeakMemory_StackCore, SeqCstEnv)
    ->Name("BM_WeakMemory_StackCore_SeqCst")
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// ------------------------------------------------------------------ //
// Model checking: the state-space cost of TSO.

cal::sched::WorldConfig exchanger_config(const cal::CaSpec* spec,
                                         std::size_t threads) {
  sched::WorldConfig cfg;
  for (std::size_t i = 0; i < threads; ++i) {
    sched::ThreadProgram p;
    p.tid = static_cast<cal::ThreadId>(i);
    p.calls = {sched::Call{0, Symbol{"exchange"},
                           Value::integer(static_cast<std::int64_t>(
                               10 * (i + 1)))}};
    cfg.programs.push_back(std::move(p));
  }
  cfg.object_names = {Symbol{"E"}};
  cfg.spec = spec;
  cfg.record_trace = true;
  cfg.heap_cells = 16;
  cfg.global_cells = 8;
  return cfg;
}

void BM_WeakMemory_Explore_Exchanger(benchmark::State& state) {
  const auto model = state.range(0) == 0 ? sched::MemoryModel::kSc
                                         : sched::MemoryModel::kTso;
  cal::ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  sched::WorldConfig cfg = exchanger_config(&spec, 3);
  sched::ExploreResult r;
  for (auto _ : state) {
    std::vector<std::unique_ptr<sched::SimObject>> objects;
    objects.push_back(std::make_unique<sched::SimExchanger>(Symbol{"E"}));
    sched::ExploreOptions opts;
    opts.memory_model = model;
    sched::Explorer ex(cfg, std::move(objects), opts);
    r = ex.run();
    benchmark::DoNotOptimize(r.states);
  }
  state.counters["states"] = static_cast<double>(r.states);
  state.counters["transitions"] = static_cast<double>(r.transitions);
  state.counters["flush_steps"] = static_cast<double>(r.flush_steps);
}
BENCHMARK(BM_WeakMemory_Explore_Exchanger)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("tso");

// The store-buffering litmus (the same machine as the regression suite in
// tests/sched/test_sim_memory.cpp and tools/cal_explore.cpp): sb(i) sets
// flag[i] with `store_order`, reads flag[1-i].
class SimStoreBuffering final : public sched::EnvSimObject {
 public:
  SimStoreBuffering(Symbol name, MemOrder store_order)
      : EnvSimObject(0), name_(name), order_(store_order) {}

  void init(sched::World& world) override {
    flags_ = world.alloc_global(2);
  }

 protected:
  [[nodiscard]] Attempt attempt(sched::SimEnv& env, sched::World& world,
                                sched::ThreadCtx& t) const override {
    static const Symbol kSb{"sb"};
    const sched::Call& call = current_call(world, t);
    const Word me = call.arg.as_int();
    env.store(flags_, me, 1, order_);
    const Word other = env.load(flags_, 1 - me, MemOrder::kAcquire);
    env.emit([&] {
      return cal::CaElement::singleton(
          name_, cal::Operation::make(t.tid, name_, kSb, Value::integer(me),
                                      Value::integer(other)));
    });
    return {Status::kDone, Value::integer(other)};
  }

 private:
  Symbol name_;
  MemOrder order_;
  Word flags_ = kNullRef;
};

// The litmus whose relaxed stores genuinely buffer: every reachable
// buffer configuration becomes state, and the flush interleavings
// multiply transitions — the honest price of the weaker model where it
// actually bites. Explored spec-less (full space, no early stop).
void BM_WeakMemory_Explore_SbLitmus(benchmark::State& state) {
  const auto model = state.range(0) == 0 ? sched::MemoryModel::kSc
                                         : sched::MemoryModel::kTso;
  const auto order = state.range(1) == 0 ? MemOrder::kSeqCst
                                         : MemOrder::kRelaxed;
  sched::WorldConfig cfg;
  cfg.programs = {
      sched::ThreadProgram{0, {sched::Call{0, Symbol{"sb"},
                                           Value::integer(0)}}},
      sched::ThreadProgram{1, {sched::Call{0, Symbol{"sb"},
                                           Value::integer(1)}}}};
  cfg.object_names = {Symbol{"L"}};
  cfg.record_trace = true;
  cfg.heap_cells = 4;
  cfg.global_cells = 4;
  sched::ExploreResult r;
  for (auto _ : state) {
    std::vector<std::unique_ptr<sched::SimObject>> objects;
    objects.push_back(
        std::make_unique<SimStoreBuffering>(Symbol{"L"}, order));
    sched::ExploreOptions opts;
    opts.memory_model = model;
    sched::Explorer ex(cfg, std::move(objects), opts);
    r = ex.run();
    benchmark::DoNotOptimize(r.states);
  }
  state.counters["states"] = static_cast<double>(r.states);
  state.counters["transitions"] = static_cast<double>(r.transitions);
  state.counters["flush_steps"] = static_cast<double>(r.flush_steps);
  state.counters["buffered_max"] = static_cast<double>(r.buffered_max);
}
BENCHMARK(BM_WeakMemory_Explore_SbLitmus)
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->ArgNames({"tso", "relaxed"});

}  // namespace
