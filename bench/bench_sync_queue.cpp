// Experiment T-SQ — the paper's second exchanger client (§2): synchronous
// queue pairing throughput vs producer/consumer counts, against an MS queue
// (asynchronous baseline) to show the hand-off cost.
#include <benchmark/benchmark.h>

#include "objects/ms_queue.hpp"
#include "objects/sync_queue.hpp"
#include "runtime/thread_registry.hpp"

namespace {

using namespace cal::objects;  // NOLINT: bench file
using cal::Symbol;
namespace runtime = cal::runtime;

// Even thread indices produce, odd consume (benchmark's ->Threads(n) with
// n even gives a balanced producer/consumer mix).
void BM_SyncQueue_Pairing(benchmark::State& state) {
  static runtime::EpochDomain* ebr = nullptr;
  static SyncQueue* q = nullptr;
  if (state.thread_index() == 0) {
    ebr = new runtime::EpochDomain();
    q = new SyncQueue(*ebr, Symbol{"SQ"});
  }
  runtime::ThreadIdGuard tid;
  const bool producer = state.thread_index() % 2 == 0;
  std::int64_t v = 1;
  std::uint64_t paired = 0;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    if (producer) {
      if (q->put(tid.tid(), v++, /*spins=*/512)) ++paired;
    } else {
      if (q->take(tid.tid(), /*spins=*/512).ok) ++paired;
    }
    ++ops;
  }
  state.counters["ops/s"] =
      benchmark::Counter(static_cast<double>(ops), benchmark::Counter::kIsRate);
  state.counters["paired_frac"] = benchmark::Counter(
      static_cast<double>(paired) / static_cast<double>(ops ? ops : 1),
      benchmark::Counter::kAvgThreads);
  if (state.thread_index() == 0) {
    delete q;
    delete ebr;
    q = nullptr;
    ebr = nullptr;
  }
}
BENCHMARK(BM_SyncQueue_Pairing)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void BM_MsQueue_Baseline(benchmark::State& state) {
  static runtime::EpochDomain* ebr = nullptr;
  static MsQueue* q = nullptr;
  if (state.thread_index() == 0) {
    ebr = new runtime::EpochDomain();
    q = new MsQueue(*ebr, Symbol{"Q"});
  }
  runtime::ThreadIdGuard tid;
  const bool producer = state.thread_index() % 2 == 0;
  std::int64_t v = 1;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    if (producer) {
      q->enq(tid.tid(), v++);
    } else {
      benchmark::DoNotOptimize(q->deq(tid.tid()));
    }
    ++ops;
  }
  state.counters["ops/s"] =
      benchmark::Counter(static_cast<double>(ops), benchmark::Counter::kIsRate);
  if (state.thread_index() == 0) {
    delete q;
    delete ebr;
    q = nullptr;
    ebr = nullptr;
  }
}
BENCHMARK(BM_MsQueue_Baseline)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// Spin-budget ablation: longer waits pair more but cost more per failure.
void BM_SyncQueue_SpinBudget(benchmark::State& state) {
  static runtime::EpochDomain* ebr = nullptr;
  static SyncQueue* q = nullptr;
  if (state.thread_index() == 0) {
    ebr = new runtime::EpochDomain();
    q = new SyncQueue(*ebr, Symbol{"SQ"});
  }
  runtime::ThreadIdGuard tid;
  const bool producer = state.thread_index() % 2 == 0;
  const auto spins = static_cast<unsigned>(state.range(0));
  std::int64_t v = 1;
  std::uint64_t paired = 0;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    if (producer) {
      if (q->put(tid.tid(), v++, spins)) ++paired;
    } else {
      if (q->take(tid.tid(), spins).ok) ++paired;
    }
    ++ops;
  }
  state.counters["paired_frac"] = benchmark::Counter(
      static_cast<double>(paired) / static_cast<double>(ops ? ops : 1),
      benchmark::Counter::kAvgThreads);
  if (state.thread_index() == 0) {
    delete q;
    delete ebr;
    q = nullptr;
    ebr = nullptr;
  }
}
BENCHMARK(BM_SyncQueue_SpinBudget)
    ->ArgName("spins")
    ->Arg(16)
    ->Arg(128)
    ->Arg(1024)
    ->Threads(4)
    ->UseRealTime();

}  // namespace

