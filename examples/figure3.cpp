// Figure 3, interactively: why the exchanger has no useful sequential
// specification, and how CAL fixes it.
//
//   $ ./figure3
//
// Reproduces the paper's §3 argument end to end:
//   * H1 (a real concurrent outcome of P) is accepted by the CA-spec;
//   * H3, its sequential "explanation", is rejected;
//   * a sequential spec loose enough to accept H1 also accepts H3' — the
//     partner-less successful exchange — because specs are prefix-closed;
//   * a sequential spec strict enough to reject H3' rejects H1 too.
#include <cstdio>

#include "cal/cal_checker.hpp"
#include "cal/lin_checker.hpp"
#include "cal/specs/exchanger_spec.hpp"

using namespace cal;  // NOLINT: example

namespace {

Value iv(std::int64_t x) { return Value::integer(x); }

/// "Too loose": exchange(v) may sequentially return any (true, v') — the
/// only sequential way to admit H1's swap.
class LooseSeqSpec final : public SequentialSpec {
 public:
  [[nodiscard]] SpecState initial() const override { return {}; }
  [[nodiscard]] std::vector<SeqStepResult> step(
      const SpecState& state, ThreadId, Symbol, Symbol,
      const Value& arg, const std::optional<Value>& ret) const override {
    std::vector<SeqStepResult> out;
    if (!ret) {
      out.push_back(SeqStepResult{state, Value::pair(false, arg.as_int())});
    } else if (ret->kind() == Value::Kind::kPair &&
               (ret->pair_ok() || ret->pair_int() == arg.as_int())) {
      out.push_back(SeqStepResult{state, *ret});
    }
    return out;
  }
};

/// "Too restrictive": sequentially, an exchange can only fail.
class StrictSeqSpec final : public SequentialSpec {
 public:
  [[nodiscard]] SpecState initial() const override { return {}; }
  [[nodiscard]] std::vector<SeqStepResult> step(
      const SpecState& state, ThreadId, Symbol, Symbol,
      const Value& arg, const std::optional<Value>& ret) const override {
    const Value fail = Value::pair(false, arg.as_int());
    if (ret && *ret != fail) return {};
    return {SeqStepResult{state, fail}};
  }
};

void show(const char* name, const History& h) {
  std::printf("--- %s ---\n%s", name, h.render_ascii().c_str());
}

const char* verdict(bool ok) { return ok ? "ACCEPT" : "REJECT"; }

}  // namespace

int main() {
  const History h1 = HistoryBuilder()
                         .call(1, "E", "exchange", iv(3))
                         .call(2, "E", "exchange", iv(4))
                         .call(3, "E", "exchange", iv(7))
                         .ret(1, Value::pair(true, 4))
                         .ret(2, Value::pair(true, 3))
                         .ret(3, Value::pair(false, 7))
                         .history();
  const History h3 = HistoryBuilder()
                         .op(1, "E", "exchange", iv(3), Value::pair(true, 4))
                         .op(2, "E", "exchange", iv(4), Value::pair(true, 3))
                         .op(3, "E", "exchange", iv(7), Value::pair(false, 7))
                         .history();
  const History h3_prefix =
      HistoryBuilder()
          .op(1, "E", "exchange", iv(3), Value::pair(true, 4))
          .history();

  show("H1: concurrent execution of P (can happen)", h1);
  show("H3: sequential explanation of H1 (cannot happen)", h3);
  show("H3': prefix of H3 — a partner-less successful exchange", h3_prefix);

  ExchangerSpec ca_spec(Symbol{"E"}, Symbol{"exchange"});
  CalChecker cal(ca_spec);
  LooseSeqSpec loose;
  StrictSeqSpec strict;
  LinChecker lin_loose(loose);
  LinChecker lin_strict(strict);

  std::printf("\n%-12s %-14s %-22s %-22s\n", "history", "CAL (CA-spec)",
              "lin (loose seq spec)", "lin (strict seq spec)");
  struct Row {
    const char* name;
    const History* h;
  };
  const Row rows[] = {{"H1", &h1}, {"H3", &h3}, {"H3'", &h3_prefix}};
  for (const Row& row : rows) {
    std::printf("%-12s %-14s %-22s %-22s\n", row.name,
                verdict(cal.check(*row.h).ok),
                verdict(lin_loose.check(*row.h).ok),
                verdict(lin_strict.check(*row.h).ok));
  }

  std::printf(
      "\nReading the table (§3 of the paper):\n"
      "  * CAL accepts exactly the executions that can happen (H1) and\n"
      "    rejects the lonely swap (H3, H3').\n"
      "  * The loose sequential spec explains H1 but, being prefix-closed,\n"
      "    must also accept H3' — the undesired behavior.\n"
      "  * The strict sequential spec rejects H3' but then rejects H1 too:\n"
      "    sequential histories can explain only executions in which all\n"
      "    exchanges fail.\n");
  return 0;
}
