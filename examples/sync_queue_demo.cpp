// The synchronous queue — the paper's second exchanger-style client (§2).
//
//   $ ./sync_queue_demo
//
// Producers hand values directly to consumers through the dual synchronous
// queue; unpaired operations time out. The recorded history is checked two
// ways, which the paper's §6 relates:
//   * against the CA-spec (pairs must overlap — one CA-element each), and
//   * against the dual-data-structure *interval* spec (each operation
//     spans a request round and a follow-up round).
#include <cstdio>
#include <thread>
#include <vector>

#include "cal/cal_checker.hpp"
#include "cal/interval_lin.hpp"
#include "cal/specs/sync_queue_spec.hpp"
#include "objects/sync_queue.hpp"
#include "runtime/recorder.hpp"

int main() {
  using namespace cal;  // NOLINT: example
  namespace rt = cal::runtime;
  namespace obj = cal::objects;

  rt::EpochDomain ebr;
  obj::SyncQueue queue(ebr, Symbol{"SQ"});
  rt::Recorder recorder;
  const Symbol q{"SQ"};
  const Symbol put{"put"};
  const Symbol take{"take"};

  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr int kOps = 5;
  {
    std::vector<std::jthread> threads;
    for (int i = 0; i < kProducers + kConsumers; ++i) {
      threads.emplace_back([&, i] {
        const auto tid = static_cast<rt::ThreadId>(i);
        for (int k = 0; k < kOps; ++k) {
          if (i < kProducers) {
            const std::int64_t v = i * 100 + k;
            recorder.invoke(tid, q, put, Value::integer(v));
            const bool ok = queue.put(tid, v, 2048);
            recorder.respond(tid, q, put, Value::boolean(ok));
          } else {
            recorder.invoke(tid, q, take);
            obj::PopResult r = queue.take(tid, 2048);
            recorder.respond(tid, q, take, Value::pair(r.ok, r.value));
          }
        }
      });
    }
  }

  const History history = recorder.snapshot();
  std::printf("--- recorded history ---\n%s\n",
              history.render_ascii().c_str());

  SyncQueueSpec ca_spec(q);
  CalChecker cal(ca_spec);
  CalCheckResult ca = cal.check(history);
  std::printf("CA-spec (hand-offs as single CA-elements): %s\n",
              ca.ok ? "CA-linearizable" : "NOT CA-linearizable");
  if (ca.ok) {
    std::printf("--- witness CA-trace ---\n%s\n",
                ca.witness->to_string().c_str());
  }

  SyncQueueIntervalSpec interval_spec(q);
  IntervalLinChecker interval(interval_spec);
  IntervalCheckResult ir = interval.check(history);
  std::printf("dual-data-structure interval spec: %s\n",
              ir.ok ? "interval-linearizable" : "NOT interval-linearizable");
  return ca.ok && ir.ok ? 0 : 1;
}
