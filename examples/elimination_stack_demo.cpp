// The elimination stack, verified modularly (§5 of the paper).
//
//   $ ./elimination_stack_demo
//
// Runs pushers and poppers against the Fig. 2 elimination stack while the
// instrumentation appends the *subobjects'* CA-elements (central-stack
// singletons, exchanger swaps) to the auxiliary trace 𝒯. Then:
//   1. the composed view 𝔽_ES = F̂_ES ∘ F̂_AR maps 𝒯 to the elimination
//      stack's own linearization points — eliminations become
//      push·pop pairs, failed attempts vanish;
//   2. the mapped trace is replayed against the sequential stack spec
//      (the WFS predicate of §4);
//   3. the recorded ES-level history is checked classically linearizable.
// The elimination array's internals never appear at the ES level — that is
// the modularity the paper contributes.
#include <cstdio>
#include <thread>
#include <vector>

#include "cal/lin_checker.hpp"
#include "cal/replay.hpp"
#include "cal/specs/elim_views.hpp"
#include "cal/specs/stack_spec.hpp"
#include "objects/elimination_stack.hpp"

int main() {
  using namespace cal;  // NOLINT: example
  namespace rt = cal::runtime;
  namespace obj = cal::objects;

  rt::EpochDomain ebr;
  rt::TraceLog trace(1 << 16);
  rt::Recorder recorder;
  obj::EliminationStack stack(ebr, Symbol{"ES"}, /*width=*/2, &trace,
                              &recorder, /*exchange_spins=*/512);

  constexpr int kPushers = 2;
  constexpr int kPoppers = 2;
  constexpr int kOps = 4;
  {
    std::vector<std::jthread> threads;
    for (int i = 0; i < kPushers + kPoppers; ++i) {
      threads.emplace_back([&, i] {
        const auto tid = static_cast<rt::ThreadId>(i);
        for (int k = 0; k < kOps; ++k) {
          if (i < kPushers) {
            stack.push(tid, i * 100 + k);
          } else {
            stack.pop(tid);
          }
        }
      });
    }
  }

  const CaTrace raw = trace.snapshot();
  std::printf("--- raw auxiliary trace 'T' (%zu elements) ---\n%s\n",
              raw.size(), raw.to_string().c_str());
  std::printf("operations completed by elimination: %llu\n\n",
              static_cast<unsigned long long>(stack.eliminations()));

  // 1. Apply the composed view.
  auto view = make_elimination_stack_view(Symbol{"ES"}, stack.stack_name(),
                                          stack.array_name(), stack.width());
  const CaTrace es_trace = view->view(raw);
  std::printf("--- F_ES(T): the elimination stack's view (%zu elements) "
              "---\n%s\n",
              es_trace.size(), es_trace.to_string().c_str());

  // 2. WFS: the viewed trace replays against the sequential stack spec.
  StackSpec spec(Symbol{"ES"});
  ReplayResult replay = replay_sequential(es_trace, spec);
  std::printf("WFS(F_ES(T)): %s\n",
              replay.ok ? "well-defined sequential stack history"
                        : replay.reason.c_str());

  // 3. Classical linearizability of the recorded ES history.
  const History history = recorder.snapshot();
  LinChecker checker(spec);
  LinCheckResult lin = checker.check(history);
  std::printf("recorded ES history (%zu actions): %s\n", history.size(),
              lin.ok ? "linearizable w.r.t. the sequential stack spec"
                     : "NOT linearizable");
  if (lin.ok && lin.witness) {
    std::printf("\n--- a witness linearization ---\n");
    for (const Operation& op : *lin.witness) {
      std::printf("  %s\n", op.to_string().c_str());
    }
  }
  return replay.ok && lin.ok ? 0 : 1;
}
