// Exhaustive verification demo: the paper's §5 proofs, run by machine.
//
//   $ ./model_check_demo
//
// Three acts:
//   1. Exhaustively explore every schedule of three concurrent exchanges
//      against the Fig. 1 exchanger, auditing each transition against the
//      Fig. 4 rely/guarantee actions (INIT/CLEAN/PASS/XCHG/FAIL), the
//      invariant J, and the Fig. 1 proof-outline assertions.
//   2. Do the same for the elimination stack composite through the view
//      function 𝔽_ES (modular: the spec at the interface is just the
//      sequential stack).
//   3. Inject a bug (an exchanger that returns its own value) and show the
//      audit produce a counterexample schedule.
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "cal/specs/elim_views.hpp"
#include "cal/specs/exchanger_spec.hpp"
#include "cal/specs/stack_spec.hpp"
#include "objects/treiber_stack.hpp"
#include "runtime/reclaim/ebr_reclaimer.hpp"
#include "runtime/reclaim/hazard.hpp"
#include "runtime/reclaim/tagged.hpp"
#include "sched/explorer.hpp"
#include "sched/rg.hpp"
#include "sched/sim_objects.hpp"

using namespace cal;         // NOLINT: example
using namespace cal::sched;  // NOLINT: example

namespace {

Value iv(std::int64_t x) { return Value::integer(x); }

void report(const char* title, const ExploreResult& r) {
  std::printf("%s\n", title);
  std::printf("  states: %zu, transitions: %zu, merged: %zu, terminals: "
              "%zu, max depth: %zu\n",
              r.states, r.transitions, r.merged, r.terminals, r.max_depth);
  if (r.por_pruned != 0 || r.symmetry_merged != 0) {
    std::printf("  por pruned: %zu, symmetry merged: %zu\n", r.por_pruned,
                r.symmetry_merged);
  }
  if (r.flush_steps != 0 || r.buffered_max != 0) {
    std::printf("  tso flush steps: %zu, buffered high-water: %zu\n",
                r.flush_steps, r.buffered_max);
  }
  if (r.ok()) {
    std::printf("  VERIFIED: no violation in any interleaving\n\n");
  } else {
    std::printf("  VIOLATION: %s\n\n", r.violations[0].to_string().c_str());
  }
}

/// Mutant for act 3: success returns echo the thread's own value,
/// injected as a respond hook on the real exchanger body.
std::unique_ptr<SimExchanger> echo_bug_exchanger(Symbol name) {
  namespace core = cal::objects::core;
  auto object = std::make_unique<SimExchanger>(name);
  SimHooks hooks;
  hooks.respond = [](const ThreadCtx& t, Value ret) {
    if (t.pc == core::ExchangerPc::kSuccessReturnB) {
      return Value::pair(true, t.regs[core::ExchangerReg::kV]);
    }
    return ret;
  };
  object->set_hooks(std::move(hooks));
  return object;
}

WorldConfig exchanger_config(const CaSpec* spec, std::size_t threads) {
  WorldConfig cfg;
  for (std::size_t i = 0; i < threads; ++i) {
    ThreadProgram p;
    p.tid = static_cast<ThreadId>(i);
    p.calls = {Call{0, Symbol{"exchange"},
                    iv(static_cast<std::int64_t>(10 * (i + 1)))}};
    cfg.programs.push_back(std::move(p));
  }
  cfg.object_names = {Symbol{"E"}};
  cfg.spec = spec;
  cfg.record_trace = true;
  cfg.heap_cells = 8;
  cfg.global_cells = 8;
  return cfg;
}

}  // namespace

int main() {
  // Act 1: the exchanger, three concurrent exchanges, full R/G audit.
  {
    ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
    WorldConfig cfg = exchanger_config(&spec, 3);
    auto machine = std::make_unique<SimExchanger>(Symbol{"E"});
    ExchangerRgAuditor auditor(*machine);
    std::vector<std::unique_ptr<SimObject>> objects;
    objects.push_back(std::move(machine));
    Explorer explorer(cfg, std::move(objects));
    explorer.set_auditor(&auditor);
    report("[1] exchanger x3 threads, Fig. 4 rely/guarantee audit + J + "
           "proof outline",
           explorer.run());
  }

  // Act 2: the elimination stack through its view function.
  {
    auto seq = std::make_shared<StackSpec>(Symbol{"ES"});
    SeqAsCaSpec spec(seq);
    auto view = make_elimination_stack_view(Symbol{"ES"}, Symbol{"ES.S"},
                                            Symbol{"ES.AR"}, 1);
    WorldConfig cfg;
    ThreadProgram pusher1{0, {Call{0, Symbol{"push"}, iv(10)}}};
    ThreadProgram pusher2{1, {Call{0, Symbol{"push"}, iv(20)}}};
    ThreadProgram popper{2, {Call{0, Symbol{"pop"}, Value::unit()}}};
    cfg.programs = {pusher1, pusher2, popper};
    cfg.object_names = {Symbol{"ES"}};
    cfg.spec = &spec;
    cfg.view = view.get();
    cfg.record_trace = true;
    cfg.heap_cells = 24;
    cfg.global_cells = 8;
    std::vector<std::unique_ptr<SimObject>> objects;
    objects.push_back(std::make_unique<SimElimStack>(
        Symbol{"ES"}, Symbol{"ES.S"}, Symbol{"ES.AR"}, 1, 2));
    Explorer explorer(cfg, std::move(objects));
    ExploreResult r = explorer.run();
    report("[2] elimination stack (2 pushers + 1 popper) via F_ES against "
           "the sequential stack spec",
           r);
    std::printf("  elimination path reachable: %s\n\n",
                (r.events & (1ull << cal::objects::core::kEventElimination))
                    ? "yes"
                    : "no");
  }

  // Act 3: a seeded bug and its counterexample.
  {
    ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
    WorldConfig cfg = exchanger_config(&spec, 2);
    std::vector<std::unique_ptr<SimObject>> objects;
    objects.push_back(echo_bug_exchanger(Symbol{"E"}));
    Explorer explorer(cfg, std::move(objects));
    report("[3] seeded bug: successful exchange returns its own value",
           explorer.run());
  }

  // Act 4: partial-order + symmetry reduction. Four identically-programmed
  // exchangers (tids drawn outside the address range, as the symmetry
  // discipline requires), explored plain and reduced: the verdict and the
  // reachable events are identical, the state count is not.
  {
    ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
    WorldConfig cfg = exchanger_config(&spec, 4);
    for (std::size_t i = 0; i < cfg.programs.size(); ++i) {
      cfg.programs[i].tid = static_cast<ThreadId>(1000 + i);
      cfg.programs[i].calls[0].arg = iv(7);  // identical offers
    }
    ExploreResult plain;
    {
      std::vector<std::unique_ptr<SimObject>> objects;
      objects.push_back(std::make_unique<SimExchanger>(Symbol{"E"}));
      Explorer explorer(cfg, std::move(objects));
      plain = explorer.run();
    }
    ExploreOptions opts;
    opts.por = true;
    opts.symmetry = true;
    std::vector<std::unique_ptr<SimObject>> objects;
    objects.push_back(std::make_unique<SimExchanger>(Symbol{"E"}));
    Explorer explorer(cfg, std::move(objects), opts);
    ExploreResult reduced = explorer.run();
    report("[4] exchanger x4 identical threads, sleep sets + thread "
           "symmetry",
           reduced);
    std::printf("  plain states: %zu -> reduced states: %zu (verdicts "
                "agree: %s)\n\n",
                plain.states, reduced.states,
                plain.ok() == reduced.ok() ? "yes" : "NO");
  }

  // Act 5: the memory-model axis. The same exchanger explored under
  // x86-TSO (per-thread store buffers, nondeterministic flush steps): the
  // body's annotations use no store weaker than seq_cst, so buffers stay
  // empty, no flush step ever fires, and the result is identical to SC —
  // the machine-checked form of the R/G argument for the annotations.
  {
    ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
    WorldConfig cfg = exchanger_config(&spec, 3);
    ExploreResult sc;
    {
      std::vector<std::unique_ptr<SimObject>> objects;
      objects.push_back(std::make_unique<SimExchanger>(Symbol{"E"}));
      Explorer explorer(cfg, std::move(objects));
      sc = explorer.run();
    }
    ExploreOptions opts;
    opts.memory_model = MemoryModel::kTso;
    std::vector<std::unique_ptr<SimObject>> objects;
    objects.push_back(std::make_unique<SimExchanger>(Symbol{"E"}));
    Explorer explorer(cfg, std::move(objects), opts);
    ExploreResult tso = explorer.run();
    report("[5] exchanger x3 threads under x86-TSO (memory model: tso)",
           tso);
    std::printf("  sc states: %zu == tso states: %zu (%s), flush steps: "
                "%zu, buffered high-water: %zu\n\n",
                sc.states, tso.states,
                sc.states == tso.states ? "identical" : "DIFFER",
                tso.flush_steps, tso.buffered_max);
  }

  // Act 6: the reclamation axis. First in the model: the central stack
  // explored with address reuse on, under each reclamation policy the
  // world can enforce — every interleaving still verifies, and the
  // counters show reuse actually happened (the ABA surface was searched,
  // not sidestepped). Then for real: the Treiber stack hammered through
  // each runtime Reclaimer backend, with the backend's own accounting.
  {
    std::printf("[6] reclamation axis: central stack with recycled "
                "addresses\n");
    const runtime::ReclaimPolicy policies[] = {runtime::ReclaimPolicy::kEbr,
                                               runtime::ReclaimPolicy::kHp,
                                               runtime::ReclaimPolicy::kTagged};
    for (const auto policy : policies) {
      auto seq = std::make_shared<CentralStackSpec>(Symbol{"S"});
      SeqAsCaSpec spec(seq);
      WorldConfig cfg;
      cfg.programs = {
          ThreadProgram{0, {Call{0, Symbol{"push"}, iv(10)}}},
          ThreadProgram{1, {Call{0, Symbol{"push"}, iv(20)}}},
          ThreadProgram{2, {Call{0, Symbol{"pop"}, Value::unit()}}}};
      cfg.object_names = {Symbol{"S"}};
      cfg.spec = &spec;
      cfg.record_trace = true;
      cfg.heap_cells = 16;
      cfg.global_cells = 4;
      cfg.recycle_addresses = true;
      cfg.reclaim_policy = policy;
      std::vector<std::unique_ptr<SimObject>> objects;
      objects.push_back(std::make_unique<SimCentralStack>(Symbol{"S"}));
      Explorer explorer(cfg, std::move(objects));
      const ExploreResult r = explorer.run();
      std::printf("  sim %-6s: %s, states: %zu, recycled allocs: %zu, "
                  "retired high-water: %zu\n",
                  runtime::reclaim_policy_name(policy),
                  r.ok() ? "VERIFIED" : "VIOLATION", r.states,
                  r.recycled_allocs, r.retired_max);
    }
    for (const auto policy : policies) {
      std::unique_ptr<runtime::Reclaimer> rec;
      switch (policy) {
        case runtime::ReclaimPolicy::kEbr:
          rec = std::make_unique<runtime::EbrReclaimer>();
          break;
        case runtime::ReclaimPolicy::kHp:
          rec = std::make_unique<runtime::HpReclaimer>();
          break;
        case runtime::ReclaimPolicy::kTagged:
          rec = std::make_unique<runtime::TaggedReclaimer>();
          break;
      }
      objects::TreiberStack stack(*rec, Symbol{"S"});
      constexpr int kThreads = 4;
      constexpr int kOps = 2000;
      {
        std::vector<std::jthread> ts;
        for (int i = 0; i < kThreads; ++i) {
          ts.emplace_back([&stack, i] {
            const auto tid = static_cast<ThreadId>(i);
            for (int k = 0; k < kOps; ++k) {
              stack.push(tid, k);
              stack.pop(tid);
            }
          });
        }
      }
      const runtime::ReclaimStats s = rec->stats();
      std::printf("  run %-6s: %d threads x %d push/pop, reclaimed: %zu, "
                  "retired pending: %zu, retired high-water: %zu\n",
                  runtime::reclaim_policy_name(policy), kThreads, kOps,
                  s.reclaimed_total, s.retired_pending, s.retired_high_water);
    }
    std::printf("\n");
  }
  return 0;
}
