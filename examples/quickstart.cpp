// Quickstart: record a concurrent exchanger execution and check it for
// concurrency-aware linearizability (CAL).
//
//   $ ./quickstart
//
// Walks the core loop of the library:
//   1. build a CA-object (the wait-free exchanger of Fig. 1),
//   2. run threads against it, recording the interface history,
//   3. decide CAL membership w.r.t. the exchanger's CA-spec (Def. 6),
//   4. print the witness CA-trace.
#include <cstdio>
#include <thread>
#include <vector>

#include "cal/cal_checker.hpp"
#include "cal/specs/exchanger_spec.hpp"
#include "objects/exchanger.hpp"
#include "runtime/recorder.hpp"

int main() {
  using namespace cal;  // NOLINT: example
  namespace rt = cal::runtime;
  namespace obj = cal::objects;

  // 1. The object. The EpochDomain is the GC substitute for offers that
  //    racing threads may still read after a call returns.
  rt::EpochDomain ebr;
  obj::Exchanger exchanger(ebr, Symbol{"E"});

  // 2. Run four threads, each trying three exchanges, recording at the
  //    object's interface.
  rt::Recorder recorder;
  {
    std::vector<std::jthread> threads;
    for (int i = 0; i < 4; ++i) {
      threads.emplace_back([&, i] {
        const auto tid = static_cast<rt::ThreadId>(i);
        for (int round = 0; round < 3; ++round) {
          const std::int64_t offer = i * 10 + round;
          recorder.invoke(tid, exchanger.name(), exchanger.method(),
                          Value::integer(offer));
          obj::ExchangeResult r = exchanger.exchange(tid, offer, 2048);
          recorder.respond(tid, exchanger.name(), exchanger.method(),
                           Value::pair(r.ok, r.value));
        }
      });
    }
  }

  const History history = recorder.snapshot();
  std::printf("--- recorded history (%zu actions) ---\n%s\n", history.size(),
              history.render_ascii().c_str());

  // 3. Decide CAL membership.
  ExchangerSpec spec(exchanger.name(), exchanger.method());
  CalChecker checker(spec);
  CalCheckResult result = checker.check(history);

  if (!result.ok) {
    std::printf("NOT CA-linearizable (visited %zu states)\n",
                result.visited_states);
    return 1;
  }

  // 4. The witness: a CA-trace in the spec's trace-set that the history
  //    agrees with. Swap elements pair the two operations that "seem to
  //    take effect simultaneously".
  std::printf("CA-linearizable. Witness CA-trace:\n%s",
              result.witness->to_string().c_str());
  std::printf("(search visited %zu states, fired %zu elements)\n",
              result.visited_states, result.fired_elements);
  return 0;
}
